#include "util/table.hpp"

#include <algorithm>
#include <ostream>

#include "util/check.hpp"

namespace ssvsp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SSVSP_CHECK(!headers_.empty());
}

void Table::addRow(std::vector<std::string> cells) {
  SSVSP_CHECK_MSG(cells.size() == headers_.size(),
                  "row has " << cells.size() << " cells, expected "
                             << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto printRow = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      os << (c + 1 == row.size() ? " |" : " | ");
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  printRow(headers_);
  os << "|-";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c], '-');
    os << (c + 1 == widths.size() ? "-|" : "-|-");
  }
  os << '\n';
  for (const auto& row : rows_) printRow(row);
}

}  // namespace ssvsp
