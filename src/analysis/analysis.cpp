#include "analysis/analysis.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "analysis/golden.hpp"
#include "consensus/messages.hpp"
#include "latency/latency.hpp"
#include "lint/codes.hpp"
#include "util/serde.hpp"

namespace ssvsp {

namespace {

std::string fmtRound(Round r) {
  return r == kNoRound ? std::string("inf") : std::to_string(r);
}

/// Evidence for the structural findings, joined over all interpreted runs.
struct StructuralEvidence {
  int n = 0;
  int t = 0;
  // L401: some process decides having heard from fewer than n - t senders.
  std::optional<std::string> belowQuorum;
  // L402: rounds whose W broadcasts repeat the previous round verbatim,
  // in a failure-free run, before the last decision.
  int deadRounds = 0;
  Round deadFrom = 0;
  Round deadDecision = 0;
  // L403: messages emitted after every correct process has decided.
  std::optional<std::string> postDecision;
  // L404: pending backlog above the 2 f (n - 1) model bound.
  std::optional<std::string> pendingOverBound;

  void observe(const RoundRunResult& run);
};

void StructuralEvidence::observe(const RoundRunResult& run) {
  const Round latency = run.latency();

  // L401 — cumulative distinct senders heard by each decider, up to and
  // including its decision round.
  if (!belowQuorum.has_value()) {
    for (ProcessId p = 0; p < n; ++p) {
      const Round d = run.decisionRound[static_cast<std::size_t>(p)];
      if (d == kNoRound) continue;
      ProcessSet heard;
      for (const RoundDelivery& del : run.deliveries)
        if (del.dst == p && del.deliveredRound <= d) heard.insert(del.src);
      if (heard.size() < n - t) {
        std::ostringstream os;
        os << "p" << p << " decides in round " << d << " having heard from "
           << heard.size() << " process(es), below the n - t = " << (n - t)
           << " quorum (run: " << run.script.toString() << ")";
        belowQuorum = os.str();
        break;
      }
    }
  }

  // L402 — dead estimate rounds, judged on failure-free runs with a
  // divergent initial configuration (unanimous runs would make even the
  // early-stopping rules look wasteful): a round r >= 2 whose per-sender W
  // broadcasts all equal the round r-1 ones contributed no information,
  // yet the decision rule waited past it.
  const bool divergent =
      !run.initial.empty() &&
      !std::all_of(run.initial.begin(), run.initial.end(),
                   [&](Value v) { return v == run.initial.front(); });
  if (deadRounds == 0 && divergent && run.script.numCrashes() == 0 &&
      latency != kNoRound) {
    std::map<std::pair<ProcessId, Round>, std::vector<Value>> wOf;
    for (const RoundDelivery& del : run.deliveries) {
      if (del.src != del.dst) continue;  // self-delivery: one sample/sender
      if (auto w = wire::decodeW(del.payload))
        wOf[{del.src, del.sentRound}] = *w;
    }
    for (Round r = 2; r <= latency; ++r) {
      bool allStable = true;
      for (ProcessId p = 0; p < n && allStable; ++p) {
        const auto cur = wOf.find({p, r});
        const auto prev = wOf.find({p, r - 1});
        if (cur == wOf.end() || prev == wOf.end() ||
            cur->second != prev->second)
          allStable = false;
      }
      if (allStable) {
        if (deadRounds == 0) deadFrom = r - 1;
        ++deadRounds;
        deadDecision = latency;
      }
    }
  }

  // L403 — traffic after the last decision of a correct process.
  if (!postDecision.has_value() && latency != kNoRound) {
    for (std::size_t r = static_cast<std::size_t>(latency);
         r < run.sentPerRound.size(); ++r) {
      if (run.sentPerRound[r] == 0) continue;
      std::ostringstream os;
      os << run.sentPerRound[r] << " message(s) still sent in round "
         << (r + 1) << " after every correct process decided by round "
         << latency << " (run: " << run.script.toString() << ")";
      postDecision = os.str();
      break;
    }
  }

  // L404 — the RWS in-flight bound: a dying sender can pend at most its
  // last two rounds of broadcasts, n - 1 messages each.
  const int bound = 2 * run.script.numCrashes() * (n - 1);
  if (!pendingOverBound.has_value() && run.peakPendingInFlight > bound) {
    std::ostringstream os;
    os << "peak pending backlog " << run.peakPendingInFlight
       << " exceeds 2 * f * (n - 1) = " << bound
       << " (run: " << run.script.toString() << ")";
    pendingOverBound = os.str();
  }
}

void reportStructural(const StructuralEvidence& ev, DiagnosticSink& sink) {
  if (ev.belowQuorum.has_value()) {
    sink.report(std::string(kDiagDecideBelowQuorum), Severity::kNote,
                *ev.belowQuorum,
                "sound only under round synchrony, where silence proves a "
                "crash; an RWS port must re-justify the rule");
  }
  if (ev.deadRounds > 0) {
    std::ostringstream os;
    os << "estimates are stable from round " << ev.deadFrom
       << " but the failure-free decision waits until round "
       << ev.deadDecision << " (" << ev.deadRounds << " dead round(s))";
    sink.report(std::string(kDiagDeadEstimateRounds), Severity::kNote,
                os.str(),
                "an early-stopping rule (f_r <= r - 2) removes the wait");
  }
  if (ev.postDecision.has_value()) {
    sink.report(std::string(kDiagMessageAfterDecision), Severity::kNote,
                *ev.postDecision,
                "halting msgs_i once decided saves the traffic; the paper "
                "keeps it for uniformity of the round structure");
  }
  if (ev.pendingOverBound.has_value()) {
    sink.report(std::string(kDiagPendingBoundExceeded), Severity::kError,
                *ev.pendingOverBound,
                "the engine or the cell enumeration violates weak round "
                "synchrony — this is a model soundness bug");
  }
}

void reportMismatch(DiagnosticSink& sink, const std::string& source,
                    const std::string& quantity, Round derived,
                    Round expected) {
  std::ostringstream os;
  os << "derived " << quantity << " = " << fmtRound(derived)
     << " diverges from the " << source << " bound " << fmtRound(expected);
  sink.report(std::string(kDiagBoundMismatch), Severity::kError, os.str(),
              "either the automaton, the declared bounds, the golden table "
              "or the schedule-cell abstraction is wrong; they must agree");
}

void checkAgainst(DiagnosticSink& sink, const std::string& source,
                  const AbstractBounds& derived, Round lat, Round latMax,
                  Round lambda, const std::vector<Round>& latByF) {
  if (derived.lat != lat) reportMismatch(sink, source, "lat(A)", derived.lat, lat);
  if (derived.latMax != latMax)
    reportMismatch(sink, source, "Lat(A)", derived.latMax, latMax);
  if (derived.lambda != lambda)
    reportMismatch(sink, source, "Lambda(A)", derived.lambda, lambda);
  for (std::size_t f = 0; f < derived.byMaxCrashes.size(); ++f) {
    const Round expected = f < latByF.size() ? latByF[f] : kNoRound;
    if (derived.byMaxCrashes[f].latest != expected) {
      std::ostringstream q;
      q << "Lat(A, f=" << f << ")";
      reportMismatch(sink, source, q.str(), derived.byMaxCrashes[f].latest,
                     expected);
    }
  }
}

std::vector<Round> evalDeclared(const DeclaredLatencyBounds& decl, int t,
                                Round* lat, Round* latMax, Round* lambda) {
  *lat = decl.lat.eval(t, t);
  *latMax = decl.latMax.eval(t, t);
  *lambda = decl.lambda.eval(0, t);
  std::vector<Round> byF;
  for (int f = 0; f <= t; ++f) byF.push_back(decl.latByF.eval(f, t));
  return byF;
}

}  // namespace

std::optional<BoundExpr> fitClosedForm(const std::vector<Round>& latByF,
                                       int t) {
  if (latByF.empty()) return std::nullopt;
  for (Round r : latByF)
    if (r == kNoRound) return std::nullopt;
  if (std::all_of(latByF.begin(), latByF.end(),
                  [&](Round r) { return r == t + 1; }))
    return boundTPlus(1);
  if (std::all_of(latByF.begin(), latByF.end(),
                  [&](Round r) { return r == latByF.front(); }))
    return boundConst(latByF.front());
  const int c = latByF.front();
  bool fits = true;
  for (std::size_t f = 0; f < latByF.size(); ++f)
    if (latByF[f] != std::min(static_cast<Round>(f) + c, t + 1)) fits = false;
  if (fits) return boundFPlusCapped(c);
  return std::nullopt;
}

AnalysisReport analyzeAlgorithm(const AlgorithmEntry& entry,
                                const AnalysisOptions& options) {
  AnalysisReport report;
  report.algorithm = entry.name;
  report.paperRef = entry.paperRef;
  report.cfg = canonicalAnalysisConfig(entry);
  report.model = entry.intendedModel;
  report.declared = entry.declaredBounds;

  StructuralEvidence evidence;
  evidence.n = report.cfg.n;
  evidence.t = report.cfg.t;
  report.derived = interpretAutomaton(
      entry, report.cfg,
      [&evidence](const RoundRunResult& run) { evidence.observe(run); });
  reportStructural(evidence, report.sink);

  std::vector<Round> derivedByF;
  for (const PerBudgetBounds& b : report.derived.byMaxCrashes)
    derivedByF.push_back(b.latest);
  report.closedForm = fitClosedForm(derivedByF, report.cfg.t);

  if (report.declared.has_value()) {
    Round lat = 0, latMax = 0, lambda = 0;
    const std::vector<Round> byF =
        evalDeclared(*report.declared, report.cfg.t, &lat, &latMax, &lambda);
    checkAgainst(report.sink, "declared", report.derived, lat, latMax, lambda,
                 byF);
  }

  if (options.checkGolden && report.declared.has_value()) {
    report.goldenChecked = true;
    const GoldenBoundsRow* row = findGoldenBounds(entry.name);
    if (row == nullptr) {
      report.sink.report(
          std::string(kDiagBoundMismatch), Severity::kError,
          "algorithm declares bounds but has no golden table row",
          "add the theorem values to analysis/golden.cpp");
    } else if (row->n != report.cfg.n || row->t != report.cfg.t) {
      report.sink.report(
          std::string(kDiagBoundMismatch), Severity::kError,
          "golden row parameters diverge from the canonical analysis config",
          "keep golden.cpp in sync with canonicalAnalysisConfig");
    } else {
      checkAgainst(report.sink, "golden", report.derived, row->lat,
                   row->latMax, row->lambda, row->latByF);
    }
  }

  if (options.checkMeasured && report.declared.has_value()) {
    report.measuredChecked = true;
    // RS sweeps are exhaustive at the canonical parameters; RWS script
    // spaces explode at t = 2, so the theorem is spot-checked at t = 1
    // (the declared bounds are symbolic in t, so the comparison is exact).
    report.measuredCfg = report.cfg;
    if (entry.intendedModel == RoundModel::kRws)
      report.measuredCfg = RoundConfig{3, 1};
    LatencyOptions lo =
        canonicalLatencyOptions(entry, report.measuredCfg, /*exhaustive=*/true);
    lo.threads = options.threads;
    lo.progressIntervalSec = options.progressIntervalSec;
    const LatencyProfile profile = measureLatency(
        entry.factory, report.measuredCfg, entry.intendedModel, lo);
    report.measuredProfile = profile.toString();

    Round lat = 0, latMax = 0, lambda = 0;
    const std::vector<Round> byF = evalDeclared(
        *report.declared, report.measuredCfg.t, &lat, &latMax, &lambda);
    auto moan = [&](const std::string& quantity, Round measured,
                    Round expected) {
      if (measured == expected) return;
      std::ostringstream os;
      os << "measured " << quantity << " = " << fmtRound(measured)
         << " diverges from the declared bound " << fmtRound(expected)
         << " at n = " << report.measuredCfg.n
         << ", t = " << report.measuredCfg.t;
      report.sink.report(std::string(kDiagBoundMismatch), Severity::kError,
                         os.str(),
                         "the exhaustive sweep disagrees with the theorem: "
                         "suspect the automaton or the declared bounds");
    };
    moan("lat(A)", profile.lat, lat);
    moan("Lat(A)", profile.latMax, latMax);
    moan("Lambda(A)", profile.lambda, lambda);
    for (int f = 0; f <= report.measuredCfg.t; ++f) {
      const auto it = profile.latByMaxCrashes.find(f);
      const Round measured =
          it != profile.latByMaxCrashes.end() ? it->second : kNoRound;
      std::ostringstream q;
      q << "Lat(A, f=" << f << ")";
      moan(q.str(), measured, byF[static_cast<std::size_t>(f)]);
    }
  }

  return report;
}

std::vector<AnalysisReport> analyzeAllAlgorithms(
    const AnalysisOptions& options) {
  std::vector<AnalysisReport> reports;
  for (const AlgorithmEntry& entry : algorithmRegistry())
    reports.push_back(analyzeAlgorithm(entry, options));
  return reports;
}

std::string AnalysisReport::toText() const {
  std::ostringstream os;
  os << algorithm << " (" << paperRef << ") in " << ssvsp::toString(model)
     << ", n = " << cfg.n << ", t = " << cfg.t << "  [" << derived.cells
     << " cells, " << derived.runs << " runs]\n";
  os << "  derived:  lat=" << fmtRound(derived.lat)
     << " Lat=" << fmtRound(derived.latMax)
     << " Lambda=" << fmtRound(derived.lambda) << " Lat(A,f)=[";
  for (std::size_t f = 0; f < derived.byMaxCrashes.size(); ++f)
    os << (f ? " " : "") << fmtRound(derived.byMaxCrashes[f].latest);
  os << "]";
  if (closedForm.has_value()) os << " ~ " << closedForm->toString();
  os << "\n";
  const PerBudgetBounds& worst = derived.byMaxCrashes.back();
  os << "  traffic:  msgs/round <= " << worst.maxMsgsPerRound
     << ", quiescent after round " << worst.quiescence
     << ", peak pending " << worst.peakPendingInFlight << "\n";
  if (declared.has_value()) {
    os << "  declared: lat=" << declared->lat.toString()
       << " Lat=" << declared->latMax.toString()
       << " Lambda=" << declared->lambda.toString()
       << " Lat(A,f)=" << declared->latByF.toString() << "\n";
  } else {
    os << "  declared: (no contract)\n";
  }
  if (goldenChecked) os << "  golden:   checked\n";
  if (measuredChecked)
    os << "  measured: " << measuredProfile << "  (n = " << measuredCfg.n
       << ", t = " << measuredCfg.t << ")\n";
  os << renderText(sink.diagnostics(), algorithm);
  return os.str();
}

std::string AnalysisReport::toJson() const {
  // Compact serde JsonWriter, same "key":value byte format as the
  // hand-rolled emitter this replaced.
  std::ostringstream os;
  JsonWriter w(os);
  const auto roundValue = [&w](Round r) {
    if (r == kNoRound)
      w.null();
    else
      w.value(r);
  };
  w.beginObject();
  w.kv("algorithm", algorithm);
  w.kv("paperRef", paperRef);
  w.kv("model", ssvsp::toString(model));
  w.kv("n", cfg.n);
  w.kv("t", cfg.t);

  w.key("derived").beginObject();
  w.key("lat");
  roundValue(derived.lat);
  w.key("Lat");
  roundValue(derived.latMax);
  w.key("Lambda");
  roundValue(derived.lambda);
  w.key("LatByF").beginArray();
  for (const PerBudgetBounds& b : derived.byMaxCrashes)
    roundValue(b.latest);
  w.endArray();
  w.key("closedForm");
  if (closedForm.has_value())
    w.value(closedForm->toString());
  else
    w.null();
  const PerBudgetBounds& worst = derived.byMaxCrashes.back();
  w.kv("maxMsgsPerRound", worst.maxMsgsPerRound);
  w.key("quiescence");
  roundValue(worst.quiescence);
  w.kv("peakPending", worst.peakPendingInFlight);
  w.kv("cells", derived.cells);
  w.kv("runs", derived.runs);
  w.endObject();

  if (declared.has_value()) {
    w.key("declared").beginObject();
    w.kv("lat", declared->lat.toString());
    w.kv("Lat", declared->latMax.toString());
    w.kv("Lambda", declared->lambda.toString());
    w.kv("LatByF", declared->latByF.toString());
    w.endObject();
  } else {
    w.key("declared").null();
  }
  w.kv("goldenChecked", goldenChecked);
  if (measuredChecked) {
    w.key("measured").beginObject();
    w.kv("n", measuredCfg.n);
    w.kv("t", measuredCfg.t);
    w.kv("profile", measuredProfile);
    w.endObject();
  } else {
    w.key("measured").null();
  }
  w.key("report").raw(renderJson(sink.diagnostics(), algorithm));
  w.endObject();
  return os.str();
}

}  // namespace ssvsp
