#include "analysis/abstract_interp.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

#include "explore/reduction.hpp"
#include "util/check.hpp"

namespace ssvsp {

RoundConfig canonicalAnalysisConfig(const AlgorithmEntry& entry) {
  const int t = entry.requiresTLe1 ? 1 : 2;
  return RoundConfig{t + 2, t};
}

std::vector<std::vector<Value>> canonicalConfigs(int n) {
  // One canonicalizer for the whole repo: the reduction layer owns the
  // definition, the analyzer (and its golden tables) just consume it.
  return canonicalValueConfigs(n);
}

namespace {

/// The canonical partial-broadcast shapes of a crasher's final round.
enum class SendShape { kSilent, kFull, kOneWitness, kAllButOne };

/// The canonical pending shapes of a dying sender under RWS: its crash-round
/// messages may lag one round, and its previous-round messages may lag one
/// round or be lost past the horizon (weak round synchrony allows both only
/// because the sender crashes in time).
enum class PendShape { kNone, kCrashLag, kPrevLag, kPrevNever };

ProcessSet shapeToSet(SendShape shape, int n, ProcessId witness) {
  switch (shape) {
    case SendShape::kSilent:
      return ProcessSet();
    case SendShape::kFull:
      return ProcessSet::full(n);
    case SendShape::kOneWitness:
      return ProcessSet::single(witness);
    case SendShape::kAllButOne:
      return ProcessSet::full(n) - ProcessSet::single(witness);
  }
  return ProcessSet();
}

/// Crasher identity sets: every subset of {p1, p2} padded with top ids.  The
/// registered automata distinguish at most ids 0 and 1 (A1's p1/p2), so any
/// other crasher choice is behaviourally equivalent to a top-id one.
std::vector<std::vector<ProcessId>> crasherSets(int n, int k) {
  std::set<std::vector<ProcessId>> dedup;
  for (int mask = 0; mask < 4; ++mask) {
    std::vector<ProcessId> ids;
    if (mask & 1) ids.push_back(0);
    if ((mask & 2) && n > 1) ids.push_back(1);
    if (static_cast<int>(ids.size()) > k) continue;
    for (ProcessId p = static_cast<ProcessId>(n - 1);
         static_cast<int>(ids.size()) < k && p >= 0; --p) {
      if (std::find(ids.begin(), ids.end(), p) == ids.end()) ids.push_back(p);
    }
    if (static_cast<int>(ids.size()) != k) continue;
    std::sort(ids.begin(), ids.end());
    dedup.insert(std::move(ids));
  }
  return {dedup.begin(), dedup.end()};
}

/// Per-crasher plan: one point of the per-crasher choice lattice.
struct CrasherPlan {
  Round round = 1;
  SendShape send = SendShape::kSilent;
  PendShape pend = PendShape::kNone;
};

void appendCell(const RoundConfig& cfg, RoundModel model,
                const std::vector<ProcessId>& ids,
                const std::vector<CrasherPlan>& plans,
                std::set<std::string>& seen, std::vector<FailureScript>& out) {
  FailureScript script;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const ProcessId p = ids[i];
    const CrasherPlan& plan = plans[i];
    // The witness receiving (or missing) the final partial broadcast: the
    // lowest surviving id, so witness chains reinforce the same process.
    ProcessId witness = 0;
    while (std::find(ids.begin(), ids.end(), witness) != ids.end()) ++witness;
    CrashEvent crash;
    crash.p = p;
    crash.round = plan.round;
    crash.sendTo = shapeToSet(plan.send, cfg.n, witness);
    script.crashes.push_back(crash);

    if (plan.pend == PendShape::kCrashLag) {
      for (ProcessId dst = 0; dst < cfg.n; ++dst) {
        if (dst == p || !crash.sendTo.contains(dst)) continue;
        script.pendings.push_back({p, dst, plan.round, plan.round + 1});
      }
    } else if (plan.pend == PendShape::kPrevLag ||
               plan.pend == PendShape::kPrevNever) {
      const Round arrival =
          plan.pend == PendShape::kPrevLag ? plan.round : kNoRound;
      for (ProcessId dst = 0; dst < cfg.n; ++dst) {
        if (dst == p) continue;
        script.pendings.push_back({p, dst, plan.round - 1, arrival});
      }
    }
  }
  if (!validateScript(script, cfg, model).ok) return;
  if (!seen.insert(script.toString()).second) return;
  out.push_back(std::move(script));
}

}  // namespace

std::vector<FailureScript> enumerateScheduleCells(const RoundConfig& cfg,
                                                  RoundModel model) {
  std::vector<FailureScript> cells;
  std::set<std::string> seen;
  cells.push_back(FailureScript{});  // the failure-free cell
  seen.insert(cells.back().toString());

  // Per-crasher choice lattice.  Crash rounds stop at t + 1: every
  // registered algorithm decides and quiesces by then, so later crashes
  // cannot change any derived quantity.
  std::vector<CrasherPlan> menu;
  for (Round r = 1; r <= cfg.t + 1; ++r) {
    for (SendShape send : {SendShape::kSilent, SendShape::kFull,
                           SendShape::kOneWitness, SendShape::kAllButOne}) {
      menu.push_back({r, send, PendShape::kNone});
      if (model != RoundModel::kRws) continue;
      if (send != SendShape::kSilent)
        menu.push_back({r, send, PendShape::kCrashLag});
      if (r > 1) {
        menu.push_back({r, send, PendShape::kPrevLag});
        menu.push_back({r, send, PendShape::kPrevNever});
      }
    }
  }

  for (int k = 1; k <= cfg.t; ++k) {
    for (const std::vector<ProcessId>& ids : crasherSets(cfg.n, k)) {
      // Cartesian product of per-crasher plans, odometer style.
      std::vector<std::size_t> pick(static_cast<std::size_t>(k), 0);
      while (true) {
        std::vector<CrasherPlan> plans;
        for (std::size_t i = 0; i < pick.size(); ++i)
          plans.push_back(menu[pick[i]]);
        appendCell(cfg, model, ids, plans, seen, cells);
        std::size_t i = 0;
        for (; i < pick.size(); ++i) {
          if (++pick[i] < menu.size()) break;
          pick[i] = 0;
        }
        if (i == pick.size()) break;
      }
    }
  }
  return cells;
}

AbstractBounds interpretAutomaton(const AlgorithmEntry& entry,
                                  const RoundConfig& cfg,
                                  const RunObserver& observer) {
  const std::vector<FailureScript> cells = enumerateScheduleCells(
      cfg, entry.intendedModel);
  const std::vector<std::vector<Value>> configs = canonicalConfigs(cfg.n);

  RoundEngineOptions engineOpt;
  engineOpt.horizon = cfg.t + 3;
  engineOpt.traceDeliveries = true;
  engineOpt.stopWhenAllDecided = false;

  AbstractBounds bounds;
  bounds.cfg = cfg;
  bounds.model = entry.intendedModel;
  bounds.cells = static_cast<std::int64_t>(cells.size());

  // Joined per exact crash count first; prefixes give the <= f semantics.
  std::vector<PerBudgetBounds> byExact(static_cast<std::size_t>(cfg.t) + 1);
  std::vector<Round> minPerConfig(configs.size(), kNoRound);

  for (const FailureScript& script : cells) {
    const auto k = static_cast<std::size_t>(script.numCrashes());
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      const RoundRunResult run = runRounds(cfg, entry.intendedModel,
                                           entry.factory, configs[ci], script,
                                           engineOpt);
      ++bounds.runs;
      if (observer) observer(run);

      const Round lr = run.latency();
      PerBudgetBounds& agg = byExact[k];
      if (lr != kNoRound &&
          (agg.earliest == kNoRound || lr < agg.earliest))
        agg.earliest = lr;
      if (lr == kNoRound || agg.latest == kNoRound)
        agg.latest = kNoRound;
      else
        agg.latest = std::max(agg.latest, lr);

      Round& cmin = minPerConfig[ci];
      if (lr != kNoRound && (cmin == kNoRound || lr < cmin)) cmin = lr;

      for (std::size_t r = 0; r < run.sentPerRound.size(); ++r) {
        agg.maxMsgsPerRound =
            std::max(agg.maxMsgsPerRound, run.sentPerRound[r]);
        if (run.sentPerRound[r] > 0)
          agg.quiescence =
              std::max(agg.quiescence, static_cast<Round>(r + 1));
      }
      agg.peakPendingInFlight =
          std::max(agg.peakPendingInFlight, run.peakPendingInFlight);
    }
  }

  // Prefix-join: every quantity is monotone in the crash budget.
  bounds.byMaxCrashes.resize(byExact.size());
  PerBudgetBounds running;
  for (std::size_t f = 0; f < byExact.size(); ++f) {
    const PerBudgetBounds& e = byExact[f];
    if (e.earliest != kNoRound &&
        (running.earliest == kNoRound || e.earliest < running.earliest))
      running.earliest = e.earliest;
    if (e.latest == kNoRound || running.latest == kNoRound)
      running.latest = kNoRound;
    else
      running.latest = std::max(running.latest, e.latest);
    running.maxMsgsPerRound =
        std::max(running.maxMsgsPerRound, e.maxMsgsPerRound);
    running.quiescence = std::max(running.quiescence, e.quiescence);
    running.peakPendingInFlight =
        std::max(running.peakPendingInFlight, e.peakPendingInFlight);
    bounds.byMaxCrashes[f] = running;
  }

  bounds.lat = bounds.byMaxCrashes.back().earliest;
  bounds.lambda = bounds.byMaxCrashes.front().latest;
  bounds.latMax = 0;
  for (Round cmin : minPerConfig) {
    if (cmin == kNoRound)
      bounds.latMax = kNoRound;
    else if (bounds.latMax != kNoRound)
      bounds.latMax = std::max(bounds.latMax, cmin);
  }
  return bounds;
}

}  // namespace ssvsp
