// The bound analyzer: abstract interpretation plus theorem cross-checks.
//
// analyzeAlgorithm interprets one registry algorithm over the abstract
// schedule space (abstract_interp.hpp), fits the derived Lat(A, f) row to
// the paper's closed-form vocabulary (consensus/bounds.hpp) and
// cross-checks the derived quantities against up to three independent
// sources:
//
//   * the registry's declared bounds (the theorems of Section 5 as code);
//   * the hand-transcribed golden table (analysis/golden.hpp);
//   * optionally, an exhaustive measured sweep (latency/measureLatency).
//
// Any divergence is reported as diagnostic L400 (an error); the structural
// findings L401-L404 (quorum-free decisions, dead estimate rounds,
// post-decision traffic, pending-bound violations) are derived from the
// interpreted runs themselves.  Codes are registered in src/lint/codes.hpp
// and documented in DESIGN.md section 9.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/abstract_interp.hpp"
#include "consensus/bounds.hpp"
#include "consensus/registry.hpp"
#include "lint/diagnostic.hpp"

namespace ssvsp {

struct AnalysisOptions {
  /// Compare derived bounds against the golden table (cheap; default on).
  bool checkGolden = true;
  /// Compare an exhaustive measured profile against the declared bounds
  /// (expensive: runs measureLatency; RWS algorithms are spot-checked at
  /// t = 1 where the sweep is exhaustive within the script budget).
  bool checkMeasured = false;
  /// Worker threads for the measured sweep (0 = one per hardware thread).
  int threads = 0;
  /// Progress-line period for the measured sweep, forwarded to
  /// ExploreSpec::progressIntervalSec (-1 = SSVSP_PROGRESS env default).
  double progressIntervalSec = -1;
};

struct AnalysisReport {
  std::string algorithm;
  std::string paperRef;
  RoundConfig cfg;  ///< canonical analysis parameters
  RoundModel model = RoundModel::kRs;

  AbstractBounds derived;
  /// Closed-form fit of the derived Lat(A, f) row, when one of the paper's
  /// shapes matches exactly (display only; comparisons use the integers).
  std::optional<BoundExpr> closedForm;
  std::optional<DeclaredLatencyBounds> declared;

  bool goldenChecked = false;
  bool measuredChecked = false;
  RoundConfig measuredCfg;       ///< parameters of the measured sweep
  std::string measuredProfile;   ///< LatencyProfile::toString() for display

  DiagnosticSink sink;  ///< L400 mismatches + L401-L404 structural findings

  bool ok() const { return !sink.hasErrors(); }
  std::string toText() const;
  std::string toJson() const;
};

/// Fits `latByF` (index f = 0 .. t) to the paper's closed forms, trying the
/// most specific shape first: t + 1 everywhere, then a constant, then
/// min(f + c, t + 1).  nullopt when no shape matches exactly or a value is
/// kNoRound.
std::optional<BoundExpr> fitClosedForm(const std::vector<Round>& latByF,
                                       int t);

/// Analyzes one algorithm at its canonical parameters.
AnalysisReport analyzeAlgorithm(const AlgorithmEntry& entry,
                                const AnalysisOptions& options = {});

/// Analyzes every registry algorithm, registry order.
std::vector<AnalysisReport> analyzeAllAlgorithms(
    const AnalysisOptions& options = {});

}  // namespace ssvsp
