// Golden latency bounds: the theorem table of paper Section 5, evaluated at
// the canonical analysis parameters (see canonicalAnalysisConfig).
//
// The values here are transcribed from the paper's statements by hand, NOT
// computed — the point is redundancy.  The analyzer derives the same
// quantities from the automata, the registry declares them as closed forms,
// and exhaustive sweeps measure them; analysis_golden_bounds (ctest) fails
// when any of the four sources diverge, so an accidental edit to an
// algorithm, to its declared bounds or to this table is caught no matter
// where it happens.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace ssvsp {

struct GoldenBoundsRow {
  std::string name;  ///< registry name (consensus/registry.hpp)
  int n = 0;
  int t = 0;
  Round lat = 0;     ///< lat(A)
  Round latMax = 0;  ///< Lat(A)
  Round lambda = 0;  ///< Lambda(A)
  std::vector<Round> latByF;  ///< Lat(A, f) for f = 0 .. t
};

/// One row per registry algorithm with a declared contract, paper order.
/// A1WS_candidate has no row: it is incorrect by design and claims nothing.
const std::vector<GoldenBoundsRow>& goldenBoundsTable();

/// Lookup by registry name; nullptr when the algorithm has no golden row.
const GoldenBoundsRow* findGoldenBounds(const std::string& name);

}  // namespace ssvsp
