#include "analysis/golden.hpp"

namespace ssvsp {

const std::vector<GoldenBoundsRow>& goldenBoundsTable() {
  // Section 5.2 / 5.3 at the canonical parameters: n = 4, t = 2 (so t + 1 =
  // 3 and min(f + 2, t + 1) is distinguishable from both t + 1 and a
  // constant), except the t <= 1 algorithms at n = 3, t = 1.
  static const std::vector<GoldenBoundsRow> kTable = {
      // FloodSet pins every degree at t + 1: the decision round is fixed.
      {"FloodSet", 4, 2, 3, 3, 3, {3, 3, 3}},
      {"FloodSetWS", 4, 2, 3, 3, 3, {3, 3, 3}},
      // C_Opt: round-1 fast path on unanimity => lat = 1, everything else
      // stays t + 1 (a divergent configuration defeats the fast path).
      {"C_OptFloodSet", 4, 2, 1, 3, 3, {3, 3, 3}},
      {"C_OptFloodSetWS", 4, 2, 1, 3, 3, {3, 3, 3}},
      // F_Opt: round-1 fast path on n - t arrivals => lat = Lat = 1 (from
      // EVERY configuration some t-crash run decides in round 1), while the
      // failure-free worst case stays t + 1.
      {"F_OptFloodSet", 4, 2, 1, 1, 3, {3, 3, 3}},
      {"F_OptFloodSetWS", 4, 2, 1, 1, 3, {3, 3, 3}},
      // A1 (t = 1): Lambda = 1, Lat(A1, f) = min(f + 1, t + 1).
      {"A1", 3, 1, 1, 1, 1, {1, 2}},
      // Early stopping: decide by round min(f + 2, t + 1); failure-free
      // runs take 2 rounds.  The WS variant needs one more round of grace.
      {"EarlyFloodSet", 4, 2, 2, 2, 2, {2, 3, 3}},
      {"EarlyFloodSetWS", 4, 2, 3, 3, 3, {3, 3, 3}},
      // Non-uniform spec: decide by round min(f + 1, t + 1).
      {"NonUniformEarlyFloodSet", 4, 2, 1, 1, 1, {1, 2, 3}},
  };
  return kTable;
}

const GoldenBoundsRow* findGoldenBounds(const std::string& name) {
  for (const GoldenBoundsRow& row : goldenBoundsTable())
    if (row.name == name) return &row;
  return nullptr;
}

}  // namespace ssvsp
