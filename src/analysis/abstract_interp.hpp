// Abstract interpretation of round automata (paper Section 5).
//
// The latency degrees of Section 5.2 quantify over the full run space:
// every initial configuration crossed with every admissible failure script.
// That space is exponential (src/mc enumerates it outright only for tiny
// systems, and truncates RWS sweeps).  This module analyzes an algorithm
// through a *quotient abstraction* of that space instead:
//
//   * initial configurations are collapsed modulo value relabeling — every
//     automaton in the registry chooses its decision ROUND from message
//     presence and cardinalities, never from the value bits, so |r| is
//     invariant under permuting the value domain;
//   * failure scripts are collapsed into schedule cells: each of at most t
//     crashers picks a crash round in [1, t+1], one of four canonical
//     partial-broadcast shapes (silent / full / a single witness / all but
//     one witness) and, under RWS, a canonical pending shape for its last
//     two rounds of messages.  Crasher identities are drawn from {p1, p2}
//     plus the top of the id range — the automata of Section 5 distinguish
//     at most p1 and p2 (A1), so the cells cover every behaviour class the
//     automata can exhibit.
//
// Each cell is executed concretely on its canonical representative (the
// round engine is the transfer function), and the per-cell results are
// joined into earliest/latest decision rounds, per-round message counts and
// quiescence — a sound SUBSET of the run space, so derived minima are upper
// bounds on lat and derived maxima are lower bounds on Lat(A, f).  The
// analysis layer (src/analysis/analysis.hpp) pins the abstraction's
// completeness against the declared theorem bounds, the golden table and
// exhaustive measured sweeps; a divergence anywhere is reported as L400.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "consensus/registry.hpp"
#include "rounds/engine.hpp"

namespace ssvsp {

/// The canonical parameters the analyzer runs an algorithm at: the smallest
/// (n, t) where every closed form of Section 5 is distinguishable from the
/// others (t = 2, n = t + 2 — at t <= 1 e.g. min(f + 2, t + 1) collapses
/// into t + 1), clamped to t = 1 for the algorithms only defined there.
RoundConfig canonicalAnalysisConfig(const AlgorithmEntry& entry);

/// Initial configurations over {0, 1} modulo value relabeling: every config
/// with initial[0] == 0.  2^(n-1) configs instead of 2^n.
std::vector<std::vector<Value>> canonicalConfigs(int n);

/// The schedule cells for (cfg, model): deduplicated, validateScript-legal
/// failure scripts per the quotient described above.  Polynomial in t for
/// fixed crash budget, versus the exponential full enumeration.
std::vector<FailureScript> enumerateScheduleCells(const RoundConfig& cfg,
                                                  RoundModel model);

/// Join of all cells with at most f crashes (index f of
/// AbstractBounds::byMaxCrashes).
struct PerBudgetBounds {
  Round earliest = kNoRound;  ///< min |r|; kNoRound if no run decided
  Round latest = 0;           ///< max |r|; kNoRound if termination failed
  std::int64_t maxMsgsPerRound = 0;
  /// Worst-case last round in which any message is emitted (0: silence).
  Round quiescence = 0;
  /// Worst-case sent-but-undelivered backlog (0 under RS).
  int peakPendingInFlight = 0;
};

struct AbstractBounds {
  RoundConfig cfg;
  RoundModel model = RoundModel::kRs;
  Round lat = kNoRound;     ///< lat(A): min |r| over all cells
  Round latMax = 0;         ///< Lat(A): max over configs of per-config min
  Round lambda = kNoRound;  ///< Lambda(A) = Lat(A, 0)
  std::vector<PerBudgetBounds> byMaxCrashes;  ///< index f = 0 .. t
  std::int64_t cells = 0;   ///< schedule cells interpreted
  std::int64_t runs = 0;    ///< cells x canonical configs
};

/// Observer for the structural checks of the analysis layer (L401-L404):
/// called once per interpreted run, with deliveries traced.
using RunObserver = std::function<void(const RoundRunResult&)>;

/// Interprets `entry` over the abstract schedule space at `cfg`.  Runs with
/// horizon t + 3 and no early stop, so post-decision traffic and quiescence
/// are visible.
AbstractBounds interpretAutomaton(const AlgorithmEntry& entry,
                                  const RoundConfig& cfg,
                                  const RunObserver& observer = {});

}  // namespace ssvsp
