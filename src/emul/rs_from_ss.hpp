// Emulation of the RS round model on the SS step-level model (paper §4.1).
//
// "In each round r, every process p_i executes n+k steps of the SS model.
//  The first n steps are used to send real messages whereas in the k last
//  steps, p_i sends null messages to make sure that, before moving to round
//  r+1, p_i receives all messages sent to it by other processes in round r
//  (k is a function of n, Delta, Phi and r)."
//
// Derivation of the padding.  Let E(r) be the local step at which a process
// finishes round r (E(0) = 0); its round-r sends complete by local step
// E(r-1) + n.  Process synchrony bounds relative speed: while q has taken s
// steps in total, any other process has taken at most (s+1)*Phi steps (p
// takes at most Phi steps inside each of the s+1 gaps around q's steps).
// Message synchrony delivers a message by the receiver's first step at least
// Delta GLOBAL steps after the send, during which the receiver takes at most
// Delta local steps.  So when the slowest alive sender q completes its
// round-r sends (local E(r-1)+n), the fastest receiver has taken at most
// (E(r-1)+n+1)*Phi local steps, and at most Delta more may pass before
// delivery is forced.  Requiring
//
//     E(r) >= (E(r-1) + n + 1) * Phi + Delta + 1
//
// guarantees every round-r message is received before the receiver's
// round-r transition (its E(r)-th step).  For Phi = 1 the padding is the
// constant k = Delta + 2; for Phi >= 2 it grows geometrically with r — an
// emulation cost the bench E9 quantifies.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "rounds/round_automaton.hpp"
#include "runtime/automaton.hpp"

namespace ssvsp {

/// Local step at which round r ends, per the recurrence above.
std::int64_t rsEmulationRoundEnd(int n, int phi, int delta, Round r);

/// Steps consumed by round r alone (n sends + padding k(n, Phi, Delta, r)).
std::int64_t rsEmulationRoundSteps(int n, int phi, int delta, Round r);

/// Wraps a RoundAutomaton as a step-level automaton implementing the
/// schedule above.  Messages are tagged with their round; the transition for
/// round r is applied at the round's final step, to exactly the round-r
/// messages received so far (all of them, by the derivation — asserted).
class RsEmulator : public Automaton {
 public:
  RsEmulator(std::unique_ptr<RoundAutomaton> inner, RoundConfig cfg,
             Value initial, int phi, int delta, Round maxRounds);

  void start(ProcessId self, int n) override;
  void onStep(StepContext& ctx) override;
  std::optional<Value> output() const override;

  /// Rounds whose transition this process has executed.
  Round roundsCompleted() const { return roundsCompleted_; }
  const RoundAutomaton& inner() const { return *inner_; }

 private:
  std::unique_ptr<RoundAutomaton> inner_;
  RoundConfig cfg_;
  Value initial_;
  int phi_;
  int delta_;
  Round maxRounds_;

  ProcessId self_ = kNoProcess;
  std::int64_t localStep_ = 0;
  Round roundsCompleted_ = 0;
  /// Round-r messages received, keyed by round then sender.
  std::map<Round, std::vector<std::optional<Payload>>> pending_;
};

/// Step-level factory running `factory`'s round automata under the
/// emulation.
AutomatonFactory emulateRsOnSs(const RoundAutomatonFactory& factory,
                               RoundConfig cfg, std::vector<Value> initial,
                               int phi, int delta, Round maxRounds);

}  // namespace ssvsp
