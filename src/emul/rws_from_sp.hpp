// Emulation of the RWS round model on the SP step-level model (paper §4.2).
//
// "The reception of messages in round r is done as follows in SP: process
//  p_i keeps executing (possibly null) steps of model SP until, for every
//  process p_j, either p_i receives a message from p_j or p_i suspects p_j."
//
// Because P's detection delay is finite but unbounded, a process may leave
// round r without the round-r message of a crashed-but-suspected sender —
// that message is PENDING and may surface while the receiver is in a later
// round, which is exactly the RWS behaviour.  Lemma 4.1 shows the emulation
// still guarantees weak round synchrony: a sender whose round-r message goes
// pending towards a receiver that finishes round r crashes by the end of its
// own round r+1.  checkWeakRoundSynchrony() verifies that operationally on
// finished executions.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rounds/round_automaton.hpp"
#include "runtime/automaton.hpp"
#include "runtime/executor.hpp"

namespace ssvsp {

class RwsEmulator : public Automaton {
 public:
  RwsEmulator(std::unique_ptr<RoundAutomaton> inner, RoundConfig cfg,
              Value initial, Round maxRounds);

  void start(ProcessId self, int n) override;
  void onStep(StepContext& ctx) override;
  std::optional<Value> output() const override;

  Round roundsCompleted() const { return roundsCompleted_; }
  const RoundAutomaton& inner() const { return *inner_; }

  /// For each completed round, the set of senders whose message was consumed
  /// in that round — the raw material for the Lemma 4.1 check.
  const std::vector<ProcessSet>& heardPerRound() const {
    return heardPerRound_;
  }

 private:
  void finishRound(ProcessSet heard);

  std::unique_ptr<RoundAutomaton> inner_;
  RoundConfig cfg_;
  Value initial_;
  Round maxRounds_;

  ProcessId self_ = kNoProcess;
  Round roundsCompleted_ = 0;
  ProcessId nextDst_ = 0;  ///< next destination in the current send phase
  /// Messages buffered by (round, sender); consumed FIFO one-per-sender.
  std::map<Round, std::vector<std::optional<Payload>>> buffered_;
  std::vector<ProcessSet> heardPerRound_;
};

AutomatonFactory emulateRwsOnSp(const RoundAutomatonFactory& factory,
                                RoundConfig cfg, std::vector<Value> initial,
                                Round maxRounds);

struct WeakSynchronyReport {
  bool ok = true;
  std::string witness;
};

/// Lemma 4.1, checked on a finished execution: for every receiver p that
/// completed round r without hearing sender q (while q was expected — i.e.
/// q completed the sends of round r or crashed before), if p is alive at the
/// end of its round r, then q crashed and q never completed round r+2.
/// `emulators` are the per-process RwsEmulator states after the run.
WeakSynchronyReport checkWeakRoundSynchrony(
    const std::vector<const RwsEmulator*>& emulators,
    const FailurePattern& pattern);

}  // namespace ssvsp
