#include "emul/rws_from_sp.hpp"

#include <sstream>

#include "util/check.hpp"
#include "util/serde.hpp"

namespace ssvsp {

// Wire format: [round, hasBody, body...].  A wire message is sent every
// round to every destination even when msgs_i is null (hasBody = 0): the
// emulation's receive guard waits for "a message or a suspicion" from every
// peer, so silence must carry information — it must mean a crash.
namespace {
Payload encodeRoundMessage(Round round, const std::optional<Payload>& body) {
  PayloadWriter w;
  w.putInt(round);
  w.putBool(body.has_value());
  if (body.has_value())
    for (std::int32_t word : *body) w.putInt(word);
  return std::move(w).take();
}
}  // namespace

RwsEmulator::RwsEmulator(std::unique_ptr<RoundAutomaton> inner,
                         RoundConfig cfg, Value initial, Round maxRounds)
    : inner_(std::move(inner)),
      cfg_(cfg),
      initial_(initial),
      maxRounds_(maxRounds) {
  SSVSP_CHECK(inner_ != nullptr);
  SSVSP_CHECK(maxRounds >= 1);
}

void RwsEmulator::start(ProcessId self, int n) {
  SSVSP_CHECK(n == cfg_.n);
  self_ = self;
  inner_->begin(self, cfg_, initial_);
}

std::optional<Value> RwsEmulator::output() const { return inner_->decision(); }

void RwsEmulator::onStep(StepContext& ctx) {
  // Stash arrivals.  Per-sender FIFO: the executor delivers in send order
  // and each sender emits one message per (round, destination), so keying
  // by round keeps the queues ordered.
  for (const Envelope& e : ctx.received()) {
    PayloadReader r(e.payload);
    const Round round = r.getInt();
    const bool hasBody = r.getBool();
    Payload body;
    while (!r.exhausted()) body.push_back(r.getInt());
    auto& slots = buffered_[round];
    if (slots.empty())
      slots.assign(static_cast<std::size_t>(cfg_.n), std::nullopt);
    // Store the wire message; a bodiless (null) message is represented by an
    // empty marker so the guard can distinguish "heard" from "silent".
    PayloadWriter stored;
    stored.putBool(hasBody);
    for (std::int32_t word : body) stored.putInt(word);
    SSVSP_CHECK_MSG(!slots[static_cast<std::size_t>(e.src)].has_value(),
                    "duplicate round message from p" << e.src);
    slots[static_cast<std::size_t>(e.src)] = std::move(stored).take();
  }

  if (roundsCompleted_ >= maxRounds_) return;
  const Round round = roundsCompleted_ + 1;

  // Send phase: one destination per step.
  if (nextDst_ < cfg_.n) {
    const ProcessId dst = nextDst_++;
    ctx.send(dst, encodeRoundMessage(round, inner_->messageFor(dst)));
    return;
  }

  // Receive guard: for every peer, a consumable message or a suspicion.
  // Consumable = the oldest buffered wire message from that peer (FIFO), of
  // any round <= the current one (late pendings surface here).
  auto oldestFor = [&](ProcessId q) -> std::optional<Round> {
    for (const auto& [r, slots] : buffered_) {
      if (r > round) break;  // future-round messages wait their turn
      if (slots[static_cast<std::size_t>(q)].has_value()) return r;
    }
    return std::nullopt;
  };

  const ProcessSet suspected = ctx.suspected();
  for (ProcessId q = 0; q < cfg_.n; ++q) {
    if (oldestFor(q).has_value()) continue;
    if (suspected.contains(q)) continue;
    return;  // keep waiting (null step)
  }

  // Consume: one message per sender, oldest first.
  std::vector<std::optional<Payload>> received(
      static_cast<std::size_t>(cfg_.n));
  ProcessSet heard;
  for (ProcessId q = 0; q < cfg_.n; ++q) {
    const auto src = oldestFor(q);
    if (!src.has_value()) continue;
    auto& slot = buffered_[*src][static_cast<std::size_t>(q)];
    PayloadReader r(*slot);
    const bool hasBody = r.getBool();
    if (hasBody) {
      Payload body;
      while (!r.exhausted()) body.push_back(r.getInt());
      received[static_cast<std::size_t>(q)] = std::move(body);
    }
    slot.reset();
    heard.insert(q);
  }
  // Drop exhausted round buckets.
  while (!buffered_.empty()) {
    auto it = buffered_.begin();
    bool empty = true;
    for (const auto& s : it->second)
      if (s.has_value()) empty = false;
    if (!empty || it->first > round) break;
    buffered_.erase(it);
  }

  heardPerRound_.push_back(heard);
  inner_->transition(received);
  ++roundsCompleted_;
  nextDst_ = 0;
}

AutomatonFactory emulateRwsOnSp(const RoundAutomatonFactory& factory,
                                RoundConfig cfg, std::vector<Value> initial,
                                Round maxRounds) {
  SSVSP_CHECK(static_cast<int>(initial.size()) == cfg.n);
  return [factory, cfg, initial = std::move(initial),
          maxRounds](ProcessId p) -> std::unique_ptr<Automaton> {
    return std::make_unique<RwsEmulator>(
        factory(p), cfg, initial[static_cast<std::size_t>(p)], maxRounds);
  };
}

WeakSynchronyReport checkWeakRoundSynchrony(
    const std::vector<const RwsEmulator*>& emulators,
    const FailurePattern& pattern) {
  WeakSynchronyReport report;
  const int n = pattern.n();
  for (ProcessId p = 0; p < n; ++p) {
    const auto& heard = emulators[static_cast<std::size_t>(p)]->heardPerRound();
    for (std::size_t ri = 0; ri < heard.size(); ++ri) {
      const Round r = static_cast<Round>(ri + 1);
      for (ProcessId q = 0; q < n; ++q) {
        if (q == p || heard[ri].contains(q)) continue;
        // p finished round r without a message from q: weak round synchrony
        // requires q to crash by the end of q's round r+1, i.e. q is faulty
        // and never starts round r+2.
        const bool qFaulty = pattern.faulty().contains(q);
        const Round qRounds =
            emulators[static_cast<std::size_t>(q)]->roundsCompleted();
        if (!qFaulty || qRounds >= r + 2) {
          std::ostringstream os;
          os << "p" << p << " finished round " << r << " without hearing p"
             << q << ", but p" << q
             << (qFaulty ? " completed round " + std::to_string(qRounds)
                         : " is correct");
          report.ok = false;
          report.witness = os.str();
          return report;
        }
      }
    }
  }
  return report;
}

}  // namespace ssvsp
