#include "emul/rs_from_ss.hpp"

#include "util/check.hpp"
#include "util/serde.hpp"

namespace ssvsp {

std::int64_t rsEmulationRoundEnd(int n, int phi, int delta, Round r) {
  SSVSP_CHECK(n >= 1 && phi >= 1 && delta >= 1 && r >= 0);
  std::int64_t e = 0;
  for (Round i = 1; i <= r; ++i) {
    const std::int64_t req = (e + n + 1) * phi + delta + 1;
    // A round always contains at least its n send steps plus one step to
    // apply the transition.
    e = std::max(e + n + 1, req);
  }
  return e;
}

std::int64_t rsEmulationRoundSteps(int n, int phi, int delta, Round r) {
  SSVSP_CHECK(r >= 1);
  return rsEmulationRoundEnd(n, phi, delta, r) -
         rsEmulationRoundEnd(n, phi, delta, r - 1);
}

RsEmulator::RsEmulator(std::unique_ptr<RoundAutomaton> inner, RoundConfig cfg,
                       Value initial, int phi, int delta, Round maxRounds)
    : inner_(std::move(inner)),
      cfg_(cfg),
      initial_(initial),
      phi_(phi),
      delta_(delta),
      maxRounds_(maxRounds) {
  SSVSP_CHECK(inner_ != nullptr);
  SSVSP_CHECK(maxRounds >= 1);
}

void RsEmulator::start(ProcessId self, int n) {
  SSVSP_CHECK(n == cfg_.n);
  self_ = self;
  inner_->begin(self, cfg_, initial_);
}

std::optional<Value> RsEmulator::output() const { return inner_->decision(); }

void RsEmulator::onStep(StepContext& ctx) {
  ++localStep_;

  // Stash everything received, keyed by the sender's round tag.
  for (const Envelope& e : ctx.received()) {
    PayloadReader r(e.payload);
    const Round round = r.getInt();
    Payload body;
    while (!r.exhausted()) body.push_back(r.getInt());
    auto& slots = pending_[round];
    if (slots.empty())
      slots.assign(static_cast<std::size_t>(cfg_.n), std::nullopt);
    SSVSP_CHECK_MSG(!slots[static_cast<std::size_t>(e.src)].has_value(),
                    "duplicate round-" << round << " message from p" << e.src);
    slots[static_cast<std::size_t>(e.src)] = std::move(body);
  }

  const Round round = roundsCompleted_ + 1;
  if (round > maxRounds_) return;  // emulation horizon reached: idle

  const std::int64_t roundStart =
      rsEmulationRoundEnd(cfg_.n, phi_, delta_, round - 1);
  const std::int64_t roundEnd =
      rsEmulationRoundEnd(cfg_.n, phi_, delta_, round);
  const std::int64_t offset = localStep_ - roundStart;  // 1-based in round
  SSVSP_CHECK_MSG(offset >= 1 && localStep_ <= roundEnd,
                  "emulation schedule desync at local step " << localStep_);

  if (offset <= cfg_.n) {
    // Send phase: one destination per step (the model's one-send-per-step).
    const ProcessId dst = static_cast<ProcessId>(offset - 1);
    if (std::optional<Payload> body = inner_->messageFor(dst)) {
      PayloadWriter w;
      w.putInt(round);
      for (std::int32_t word : *body) w.putInt(word);
      ctx.send(dst, std::move(w).take());
    }
  }

  if (localStep_ == roundEnd) {
    // Transition phase: by the padding derivation every round-`round`
    // message addressed to us has arrived.
    auto it = pending_.find(round);
    std::vector<std::optional<Payload>> received =
        it != pending_.end()
            ? std::move(it->second)
            : std::vector<std::optional<Payload>>(
                  static_cast<std::size_t>(cfg_.n), std::nullopt);
    if (it != pending_.end()) pending_.erase(it);
    // A surviving entry for an older round would mean a message outlived its
    // delivery deadline — the padding derivation rules that out.
    SSVSP_CHECK_MSG(pending_.empty() || pending_.begin()->first > round,
                    "round-" << pending_.begin()->first
                             << " message arrived after its round at p"
                             << self_);
    inner_->transition(received);
    ++roundsCompleted_;
  }
}

AutomatonFactory emulateRsOnSs(const RoundAutomatonFactory& factory,
                               RoundConfig cfg, std::vector<Value> initial,
                               int phi, int delta, Round maxRounds) {
  SSVSP_CHECK(static_cast<int>(initial.size()) == cfg.n);
  return [factory, cfg, initial = std::move(initial), phi, delta,
          maxRounds](ProcessId p) -> std::unique_ptr<Automaton> {
    return std::make_unique<RsEmulator>(
        factory(p), cfg, initial[static_cast<std::size_t>(p)], phi, delta,
        maxRounds);
  };
}

}  // namespace ssvsp
