// Synchrony condition checkers for the SS model (paper Section 2.4).
//
// SS is the asynchronous model restricted to runs satisfying, for constants
// Phi >= 1 and Delta >= 1:
//
//   Process synchrony — in any window of consecutive steps of S in which
//   some process takes Phi+1 steps, every process alive at the end of the
//   window takes at least one step.
//
//   Message synchrony — if message m is sent to p_i during the k-th step of
//   S and p_i takes the l-th step with l >= k + Delta, then m is received
//   by the end of the l-th step.
//
// Both conditions are over schedule indices, not real time (following
// Dolev-Dwork-Stockmeyer).  The checkers run over a recorded RunTrace and
// return the first violating witness, so the SS schedule generator and the
// RS emulation can be validated rather than trusted.
#pragma once

#include <string>

#include "runtime/trace.hpp"

namespace ssvsp {

struct SynchronyReport {
  bool ok = true;
  std::string witness;
};

/// Checks process synchrony with bound Phi.  O(steps * n).
SynchronyReport checkProcessSynchrony(const RunTrace& trace, int phi);

/// Checks message synchrony with bound Delta.  O(messages * steps) worst
/// case, linear in practice via per-process step indexing.
SynchronyReport checkMessageSynchrony(const RunTrace& trace, int delta);

/// Both conditions.
SynchronyReport checkSsRun(const RunTrace& trace, int phi, int delta);

}  // namespace ssvsp
