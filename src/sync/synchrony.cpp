#include "sync/synchrony.hpp"

#include <map>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace ssvsp {

namespace {
SynchronyReport fail(std::string witness) {
  SynchronyReport r;
  r.ok = false;
  r.witness = std::move(witness);
  return r;
}
}  // namespace

SynchronyReport checkProcessSynchrony(const RunTrace& trace, int phi) {
  SSVSP_CHECK(phi >= 1);
  const int n = trace.n();
  // counter[q][p] = number of steps p has taken since q's last step (or
  // since the start of the schedule).  A violation exists iff some counter
  // reaches phi+1 at a moment where q is still alive: the window from just
  // after q's last step to now contains phi+1 steps of p and none of q.
  std::vector<std::vector<int>> counter(
      static_cast<std::size_t>(n), std::vector<int>(static_cast<std::size_t>(n), 0));
  for (const auto& s : trace.steps()) {
    const ProcessId p = s.pid;
    for (ProcessId q = 0; q < n; ++q) {
      if (q == p) continue;
      int& c = counter[static_cast<std::size_t>(q)][static_cast<std::size_t>(p)];
      ++c;
      if (c >= phi + 1 && trace.pattern().alive(q, s.time)) {
        std::ostringstream os;
        os << "p" << p << " took " << c << " steps (> Phi=" << phi
           << ") since alive p" << q << "'s last step, at step #"
           << s.globalStep;
        return fail(os.str());
      }
    }
    for (ProcessId other = 0; other < n; ++other)
      counter[static_cast<std::size_t>(p)][static_cast<std::size_t>(other)] = 0;
  }
  return {};
}

SynchronyReport checkMessageSynchrony(const RunTrace& trace, int delta) {
  SSVSP_CHECK(delta >= 1);
  // Delivery step per message seq.
  std::map<std::int64_t, std::int64_t> deliveredAt;
  for (const auto& s : trace.steps())
    for (const auto& e : s.delivered) deliveredAt[e.seq] = s.globalStep;

  for (const auto& s : trace.steps()) {
    if (!s.sent.has_value()) continue;
    const Envelope& m = *s.sent;
    const std::int64_t k = s.globalStep;
    // First step of the recipient with global index >= k + delta.
    std::int64_t deadline = -1;
    for (const auto& r : trace.steps()) {
      if (r.pid == m.dst && r.globalStep >= k + delta) {
        deadline = r.globalStep;
        break;
      }
    }
    if (deadline < 0) continue;  // recipient never reaches index k + delta
    auto it = deliveredAt.find(m.seq);
    if (it == deliveredAt.end() || it->second > deadline) {
      std::ostringstream os;
      os << "message seq=" << m.seq << " (p" << m.src << "->p" << m.dst
         << ", sent at step #" << k << ") not received by p" << m.dst
         << "'s step #" << deadline << " (Delta=" << delta << ")";
      return fail(os.str());
    }
  }
  return {};
}

SynchronyReport checkSsRun(const RunTrace& trace, int phi, int delta) {
  SynchronyReport r = checkProcessSynchrony(trace, phi);
  if (!r.ok) return r;
  return checkMessageSynchrony(trace, delta);
}

}  // namespace ssvsp
