// SS-conforming schedule and delivery generation.
//
// SsScheduler produces (randomized) schedules that satisfy Phi-process
// synchrony by construction: it tracks, for every pair (q, p), how many
// steps p has taken since q's last step, and only ever schedules a process
// whose step keeps all counters of alive observers at most Phi.  The
// least-recently-scheduled alive process always qualifies, so the greedy
// choice never deadlocks.
//
// SsDelivery realizes Delta-message synchrony: each message is assigned an
// adversarial delay d in [1, Delta] (in global steps) and is received at the
// recipient's first step at least d global steps after the send — hence
// always by the recipient's first step >= send + Delta, as the model
// requires.
#pragma once

#include <vector>

#include "runtime/delivery.hpp"
#include "runtime/schedulers.hpp"
#include "util/rng.hpp"

namespace ssvsp {

class SsScheduler : public StepScheduler {
 public:
  /// `bias`: 0 picks uniformly among eligible processes; values > 0
  /// increasingly favour low-id processes, producing lopsided-but-legal
  /// schedules that stress Phi windows.
  SsScheduler(int n, int phi, Rng rng, double bias = 0.0);

  ProcessId nextStep(const SchedulerView& view) override;

 private:
  bool eligible(ProcessId p, const SchedulerView& view) const;

  int n_;
  int phi_;
  Rng rng_;
  double bias_;
  /// counter_[q][p]: steps p has taken since q's last step.
  std::vector<std::vector<int>> counter_;
};

class SsDelivery : public DeliveryPolicy {
 public:
  SsDelivery(Rng rng, int delta);

  std::vector<std::size_t> deliverNow(
      ProcessId p, std::int64_t localStep,
      const std::vector<BufferedMessage>& buffer,
      const SchedulerView& view) override;

 private:
  Rng rng_;
  int delta_;
  /// seq -> assigned delay in global steps, in [1, delta].
  std::vector<std::pair<std::int64_t, std::int64_t>> delay_;
  std::int64_t delayFor(std::int64_t seq);
};

}  // namespace ssvsp
