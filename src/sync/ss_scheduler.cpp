#include "sync/ss_scheduler.hpp"

#include "util/check.hpp"

namespace ssvsp {

SsScheduler::SsScheduler(int n, int phi, Rng rng, double bias)
    : n_(n),
      phi_(phi),
      rng_(rng),
      bias_(bias),
      counter_(static_cast<std::size_t>(n),
               std::vector<int>(static_cast<std::size_t>(n), 0)) {
  SSVSP_CHECK(n >= 1 && n <= kMaxProcs);
  SSVSP_CHECK(phi >= 1);
  SSVSP_CHECK(bias >= 0.0);
}

bool SsScheduler::eligible(ProcessId p, const SchedulerView& view) const {
  // Scheduling p bumps counter_[q][p] for every q != p; process synchrony
  // forbids that counter reaching phi+1 while q is alive.
  for (ProcessId q : view.alive) {
    if (q == p) continue;
    if (counter_[static_cast<std::size_t>(q)][static_cast<std::size_t>(p)] >=
        phi_)
      return false;
  }
  return true;
}

ProcessId SsScheduler::nextStep(const SchedulerView& view) {
  if (view.alive.empty()) return kNoProcess;
  std::vector<ProcessId> candidates;
  for (ProcessId p : view.alive)
    if (eligible(p, view)) candidates.push_back(p);
  SSVSP_CHECK_MSG(!candidates.empty(),
                  "SS greedy scheduler found no eligible process");

  ProcessId pick;
  if (bias_ <= 0.0) {
    pick = candidates[rng_.index(candidates.size())];
  } else {
    // Geometric preference for low-id candidates: candidate i is chosen
    // with probability proportional to (1 + bias)^-i.
    double total = 0.0;
    std::vector<double> w(candidates.size());
    double cur = 1.0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      w[i] = cur;
      total += cur;
      cur /= (1.0 + bias_);
    }
    double r = rng_.uniformReal() * total;
    pick = candidates.back();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      r -= w[i];
      if (r <= 0.0) {
        pick = candidates[i];
        break;
      }
    }
  }

  for (ProcessId q = 0; q < n_; ++q) {
    if (q == pick) continue;
    ++counter_[static_cast<std::size_t>(q)][static_cast<std::size_t>(pick)];
  }
  for (ProcessId other = 0; other < n_; ++other)
    counter_[static_cast<std::size_t>(pick)][static_cast<std::size_t>(other)] =
        0;
  return pick;
}

SsDelivery::SsDelivery(Rng rng, int delta) : rng_(rng), delta_(delta) {
  SSVSP_CHECK(delta >= 1);
}

std::int64_t SsDelivery::delayFor(std::int64_t seq) {
  for (const auto& [s, d] : delay_)
    if (s == seq) return d;
  const std::int64_t d = rng_.uniformInt(1, delta_);
  delay_.emplace_back(seq, d);
  if (delay_.size() > 4096)
    delay_.erase(delay_.begin(), delay_.begin() + 2048);
  return d;
}

std::vector<std::size_t> SsDelivery::deliverNow(
    ProcessId /*p*/, std::int64_t /*localStep*/,
    const std::vector<BufferedMessage>& buffer, const SchedulerView& view) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < buffer.size(); ++i)
    if (view.globalStep >= buffer[i].env.sentStep + delayFor(buffer[i].env.seq))
      out.push_back(i);
  return out;
}

}  // namespace ssvsp
