// Timeout-based implementation of the perfect failure detector on SS.
//
// Paper, Section 3: "In the synchronous model, detecting failures perfectly
// is easy: a simple time-out mechanism with time-out periods that depend on
// the Delta and Phi bounds, one can implement a perfect failure detector."
//
// HeartbeatAutomaton makes that constructive.  Every process sends
// heartbeats to its peers round-robin (one per step, honouring the
// one-message-per-step rule) and suspects a peer after a silence of
// `timeout` of its own steps.  With timeout >= safeTimeout(n, phi, delta)
// the suspicions satisfy P's axioms on every SS run:
//
//   accuracy    — while q is alive, q takes >= k steps in any window where
//                 the observer takes k*(phi+1) steps (process synchrony,
//                 applied to a partition of the window), so q pushes a fresh
//                 heartbeat to the observer every <= n*(phi+1) observer
//                 steps, plus <= delta observer steps for delivery;
//   completeness — after q crashes and its in-flight heartbeats drain, the
//                 observer's silence counter grows without bound.
//
// Tests validate both axioms over randomized SS runs, and demonstrate that
// an undersized timeout (one that ignores phi or delta) produces false
// suspicions — the reason this construction cannot exist in SP.
#pragma once

#include <optional>
#include <vector>

#include "runtime/automaton.hpp"
#include "util/process_set.hpp"

namespace ssvsp {

/// Conservative safe timeout in observer-local steps.
constexpr std::int64_t safeTimeout(int n, int phi, int delta) {
  return static_cast<std::int64_t>(n + 2) * (phi + 1) + delta + 2;
}

class HeartbeatAutomaton : public Automaton {
 public:
  explicit HeartbeatAutomaton(std::int64_t timeout) : timeout_(timeout) {}

  void start(ProcessId self, int n) override;
  void onStep(StepContext& ctx) override;
  std::optional<Value> output() const override { return std::nullopt; }

  /// The processes this module currently suspects.
  ProcessSet suspected() const { return suspected_; }

 private:
  std::int64_t timeout_;
  ProcessId self_ = kNoProcess;
  int n_ = 0;
  ProcessId nextDst_ = 0;
  std::int64_t localStep_ = 0;
  /// Local step at which the last heartbeat from each peer was received.
  std::vector<std::int64_t> lastHeard_;
  ProcessSet suspected_;
};

}  // namespace ssvsp
