#include "sync/heartbeat_fd.hpp"

#include "util/check.hpp"
#include "util/serde.hpp"

namespace ssvsp {

namespace {
constexpr std::int32_t kHeartbeatTag = 0x48;  // 'H'
}

void HeartbeatAutomaton::start(ProcessId self, int n) {
  SSVSP_CHECK(timeout_ >= 1);
  self_ = self;
  n_ = n;
  nextDst_ = (self + 1) % n;
  lastHeard_.assign(static_cast<std::size_t>(n), 0);
}

void HeartbeatAutomaton::onStep(StepContext& ctx) {
  ++localStep_;

  for (const Envelope& e : ctx.received()) {
    PayloadReader r(e.payload);
    SSVSP_CHECK_MSG(r.getInt() == kHeartbeatTag, "unexpected payload");
    lastHeard_[static_cast<std::size_t>(e.src)] = localStep_;
  }

  // Re-evaluate suspicions.  A fresh heartbeat clears a suspicion: the only
  // way a suspected process can speak again is via a message that was in
  // flight when it crashed, so clearing never violates accuracy, and once
  // the in-flight messages drain the suspicion becomes permanent
  // (completeness).
  for (ProcessId q = 0; q < n_; ++q) {
    if (q == self_) continue;
    const std::int64_t silence =
        localStep_ - lastHeard_[static_cast<std::size_t>(q)];
    if (silence > timeout_) {
      suspected_.insert(q);
    } else {
      suspected_.erase(q);
    }
  }

  // Heartbeat the next peer (skipping self), one destination per step.
  if (n_ > 1) {
    if (nextDst_ == self_) nextDst_ = (nextDst_ + 1) % n_;
    PayloadWriter w;
    w.putInt(kHeartbeatTag);
    ctx.send(nextDst_, std::move(w).take());
    nextDst_ = (nextDst_ + 1) % n_;
  }
}

}  // namespace ssvsp
