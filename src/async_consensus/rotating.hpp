// Rotating-coordinator uniform consensus for the asynchronous model with an
// unreliable failure detector (Chandra & Toueg [6]; the setting in which
// Schiper's latency degree [18] was originally defined).
//
// The paper's comparison needs both end-points of the failure-detector
// spectrum: SP (perfect detection — the models of Sections 4-5) and the
// weaker classes where detection may be WRONG.  RotatingConsensus runs in
// the plain step-level asynchronous executor with any detector from src/fd
// and tolerates t < n/2 crashes under eventually-strong (<>S) suspicions:
//
//   round r, coordinator c = (r-1) mod n
//   phase 1  everyone sends its (estimate, ts) to c
//   phase 2  c collects a majority, adopts the estimate with maximal ts and
//            broadcasts it as the round's proposal
//   phase 3  everyone waits for the proposal — or a suspicion of c — and
//            replies ack / nack; an ack locks the proposal (ts := r)
//   phase 4  c collects a majority of replies; all-ack majority => decide
//            and reliably broadcast the decision
//
// The majority-locking argument gives UNIFORM agreement; eventual weak
// accuracy (some correct process eventually never suspected) gives
// termination once that process coordinates a round after stabilization.
// Contrast with Theorem 3.1: consensus survives wrong suspicions, SDD does
// not survive even arbitrarily-late correct ones.
//
// Step discipline: the model allows one send per step, so the automaton
// queues outgoing messages and drains one per step; waits are re-evaluated
// every step and never block the process.
#pragma once

#include <deque>
#include <map>
#include <optional>

#include "runtime/automaton.hpp"
#include "util/process_set.hpp"

namespace ssvsp {

class RotatingConsensus : public Automaton {
 public:
  explicit RotatingConsensus(Value initial) : estimate_(initial) {}

  void start(ProcessId self, int n) override;
  void onStep(StepContext& ctx) override;
  std::optional<Value> output() const override { return decision_; }

  Round round() const { return round_; }

 private:
  struct RoundState {
    // Coordinator side.
    std::map<ProcessId, std::pair<Value, Round>> estimates;  // p -> (est, ts)
    bool proposed = false;
    Value proposal = kUndecided;
    int acks = 0;
    int nacks = 0;
    ProcessSet replied;
    bool resolved = false;  // coordinator finished phase 4
    // Participant side.
    std::optional<Value> proposalSeen;
    bool estSent = false;
    bool replySent = false;
  };

  ProcessId coordinatorOf(Round r) const {
    return static_cast<ProcessId>((r - 1) % n_);
  }
  int majority() const { return n_ / 2 + 1; }
  RoundState& state(Round r) { return rounds_[r]; }

  void ingest(const StepContext& ctx);
  void advance(const StepContext& ctx);
  void enqueueToAll(const Payload& payload, bool includeSelf);
  void enqueue(ProcessId dst, Payload payload);
  void handleSelf(const Payload& payload);

  ProcessId self_ = kNoProcess;
  int n_ = 0;
  Value estimate_;
  Round ts_ = 0;
  Round round_ = 1;
  std::map<Round, RoundState> rounds_;
  std::optional<Value> decision_;
  bool decisionRelayed_ = false;
  std::deque<std::pair<ProcessId, Payload>> outbox_;
};

/// Factory over per-process initial values.
AutomatonFactory makeRotatingConsensus(std::vector<Value> initial);

}  // namespace ssvsp
