#include "async_consensus/rotating.hpp"

#include "util/check.hpp"
#include "util/serde.hpp"

namespace ssvsp {

namespace {
constexpr std::int32_t kTagEst = 20;     // [tag, round, est, ts]
constexpr std::int32_t kTagProp = 21;    // [tag, round, v]
constexpr std::int32_t kTagReply = 22;   // [tag, round, ack(0/1)]
constexpr std::int32_t kTagDecide = 23;  // [tag, v]

Payload estMsg(Round r, Value est, Round ts) {
  PayloadWriter w;
  w.putInt(kTagEst);
  w.putInt(r);
  w.putValue(est);
  w.putInt(ts);
  return std::move(w).take();
}

Payload propMsg(Round r, Value v) {
  PayloadWriter w;
  w.putInt(kTagProp);
  w.putInt(r);
  w.putValue(v);
  return std::move(w).take();
}

Payload replyMsg(Round r, bool ack) {
  PayloadWriter w;
  w.putInt(kTagReply);
  w.putInt(r);
  w.putBool(ack);
  return std::move(w).take();
}

Payload decideMsg(Value v) {
  PayloadWriter w;
  w.putInt(kTagDecide);
  w.putValue(v);
  return std::move(w).take();
}

}  // namespace

void RotatingConsensus::start(ProcessId self, int n) {
  SSVSP_CHECK(n >= 2);
  self_ = self;
  n_ = n;
}

void RotatingConsensus::enqueue(ProcessId dst, Payload payload) {
  if (dst == self_) {
    handleSelf(payload);
    return;
  }
  outbox_.emplace_back(dst, std::move(payload));
}

void RotatingConsensus::enqueueToAll(const Payload& payload,
                                     bool includeSelf) {
  for (ProcessId p = 0; p < n_; ++p) {
    if (p == self_ && !includeSelf) continue;
    enqueue(p, payload);
  }
}

void RotatingConsensus::handleSelf(const Payload& payload) {
  // Local shortcut for messages addressed to ourselves (the model permits
  // self-messages, but handling them synchronously keeps the automaton's
  // waits simple and saves steps).
  PayloadReader r(payload);
  const std::int32_t tag = r.getInt();
  switch (tag) {
    case kTagEst: {
      const Round rd = r.getInt();
      const Value est = r.getValue();
      const Round ts = r.getInt();
      state(rd).estimates[self_] = {est, ts};
      break;
    }
    case kTagProp: {
      const Round rd = r.getInt();
      state(rd).proposalSeen = r.getValue();
      break;
    }
    case kTagReply: {
      const Round rd = r.getInt();
      RoundState& s = state(rd);
      if (!s.replied.contains(self_)) {
        s.replied.insert(self_);
        if (r.getBool())
          ++s.acks;
        else
          ++s.nacks;
      }
      break;
    }
    case kTagDecide: {
      const Value v = r.getValue();
      if (!decision_.has_value()) decision_ = v;
      break;
    }
    default:
      SSVSP_CHECK_MSG(false, "unknown self tag " << tag);
  }
}

void RotatingConsensus::ingest(const StepContext& ctx) {
  for (const Envelope& e : ctx.received()) {
    PayloadReader r(e.payload);
    const std::int32_t tag = r.getInt();
    switch (tag) {
      case kTagEst: {
        const Round rd = r.getInt();
        const Value est = r.getValue();
        const Round ts = r.getInt();
        state(rd).estimates[e.src] = {est, ts};
        break;
      }
      case kTagProp: {
        const Round rd = r.getInt();
        const Value v = r.getValue();
        state(rd).proposalSeen = v;
        break;
      }
      case kTagReply: {
        const Round rd = r.getInt();
        RoundState& s = state(rd);
        if (!s.replied.contains(e.src)) {
          s.replied.insert(e.src);
          if (r.getBool())
            ++s.acks;
          else
            ++s.nacks;
        }
        break;
      }
      case kTagDecide: {
        const Value v = r.getValue();
        if (!decision_.has_value()) {
          decision_ = v;
        } else {
          SSVSP_CHECK_MSG(*decision_ == v, "conflicting decisions relayed");
        }
        break;
      }
      default:
        SSVSP_CHECK_MSG(false, "unknown tag " << tag);
    }
  }
}

void RotatingConsensus::advance(const StepContext& ctx) {
  // Relay a freshly learned decision once (reliable broadcast of DECIDE).
  if (decision_.has_value()) {
    if (!decisionRelayed_) {
      decisionRelayed_ = true;
      enqueueToAll(decideMsg(*decision_), /*includeSelf=*/false);
    }
    return;
  }

  RoundState& s = state(round_);
  const ProcessId coord = coordinatorOf(round_);

  // Phase 1: announce our estimate to the coordinator (once per round).
  if (!s.estSent) {
    s.estSent = true;
    enqueue(coord, estMsg(round_, estimate_, ts_));
  }

  // Phase 2 (coordinator): majority of estimates -> proposal.
  if (self_ == coord && !s.proposed &&
      static_cast<int>(s.estimates.size()) >= majority()) {
    Round bestTs = -1;
    Value best = kUndecided;
    for (const auto& [p, et] : s.estimates) {
      if (et.second > bestTs) {
        bestTs = et.second;
        best = et.first;
      }
    }
    s.proposed = true;
    s.proposal = best;
    enqueueToAll(propMsg(round_, best), /*includeSelf=*/true);
  }

  // Phase 3: adopt the proposal and ack, or nack on suspicion.
  if (!s.replySent) {
    if (s.proposalSeen.has_value()) {
      s.replySent = true;
      estimate_ = *s.proposalSeen;
      ts_ = round_;
      enqueue(coord, replyMsg(round_, true));
      if (self_ != coord) ++round_;  // participant moves on after its reply
    } else if (ctx.suspected().contains(coord)) {
      s.replySent = true;
      enqueue(coord, replyMsg(round_, false));
      if (self_ != coord) ++round_;
    }
  }

  // Phase 4 (coordinator): majority of replies resolves the round.
  if (self_ == coord && s.proposed && !s.resolved &&
      s.acks + s.nacks >= majority()) {
    s.resolved = true;
    if (s.acks >= majority()) {
      decision_ = s.proposal;
      decisionRelayed_ = true;
      enqueueToAll(decideMsg(*decision_), /*includeSelf=*/false);
    } else {
      ++round_;
    }
  }
  // No other escape is needed: a correct coordinator always gathers a
  // majority of estimates eventually (every correct process traverses every
  // round and a majority is correct), always proposes, and therefore always
  // collects a majority of replies — acks or nacks — before resolving.
  // Abandoning a round without proposing would strand participants that
  // never (rightly) suspect an immune coordinator.
}

void RotatingConsensus::onStep(StepContext& ctx) {
  ingest(ctx);
  advance(ctx);
  if (!outbox_.empty()) {
    auto [dst, payload] = std::move(outbox_.front());
    outbox_.pop_front();
    ctx.send(dst, std::move(payload));
  }
}

AutomatonFactory makeRotatingConsensus(std::vector<Value> initial) {
  return [initial = std::move(initial)](ProcessId p) {
    SSVSP_CHECK(p >= 0 && p < static_cast<ProcessId>(initial.size()));
    return std::make_unique<RotatingConsensus>(
        initial[static_cast<std::size_t>(p)]);
  };
}

}  // namespace ssvsp
