// A small text format for describing round-model scenarios, so that runs —
// especially model-checker counterexamples — can be saved, shared and
// replayed from the command line (examples/scenario_runner).
//
//   # FloodSet loses uniform agreement in RWS (paper Sec. 5.1)
//   model     rws
//   algorithm FloodSet
//   n 3
//   t 2
//   values 0 1 1
//   horizon 5
//   crash 0 round 2 sendto none
//   crash 1 round 4 sendto all
//   pending 0 -> 1 round 1 arrival 2
//   pending 0 -> 2 round 1 never
//   pending 1 -> 2 round 3 never
//
// Grammar (one directive per line, '#' starts a comment):
//   model (rs|rws)
//   algorithm <registry name>
//   n <int>                     t <int>
//   values <v0> ... <v(n-1)>    ('_' = opt out, for broadcast scenarios)
//   horizon <int>               (default t+2)
//   crash <p> round <r> sendto (all|none|<id>,<id>,...)
//   pending <src> -> <dst> round <r> (arrival <r'>|never)
#pragma once

#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "rounds/engine.hpp"

namespace ssvsp {

struct Scenario {
  RoundModel model = RoundModel::kRs;
  std::string algorithm = "FloodSet";
  RoundConfig cfg;
  std::vector<Value> values;
  int horizon = 0;  ///< 0 = derive t+2
  FailureScript script;
};

struct ScenarioParseResult {
  bool ok = true;
  std::string error;  ///< first error, with its line/column (back-compat)
  /// Structured diagnostics with line/column-accurate locations and the
  /// stable codes of src/lint/codes.hpp.  Empty iff ok.
  std::vector<Diagnostic> diagnostics;
  /// The directives parsed into a structurally complete scenario; only the
  /// semantic script/registry validation may have failed.  The lint pass
  /// (lintScenarioText) re-checks such scenarios with per-condition codes.
  bool structureOk = false;
  Scenario scenario;
};

/// Parses the text format above.  Unknown directives, malformed arguments,
/// out-of-range ids and scripts invalid for the model are all reported,
/// each with the line and column of the offending token.
ScenarioParseResult parseScenario(const std::string& text);

/// Renders a scenario back into the text format (parse/serialize round-trip
/// is stable).
std::string serializeScenario(const Scenario& scenario);

/// Runs the scenario and returns the finished engine result.
RoundRunResult runScenario(const Scenario& scenario, bool traceDeliveries);

}  // namespace ssvsp
