#include "scenario/scenario.hpp"

#include <cctype>
#include <sstream>

#include "consensus/registry.hpp"
#include "lint/codes.hpp"
#include "util/check.hpp"

namespace ssvsp {

namespace {

/// Hand-rolled tokenizer so every diagnostic can carry the 1-based column
/// of the offending token (istream extraction discards positions).
class LineScanner {
 public:
  void reset(const std::string& line) {
    line_ = line;
    pos_ = 0;
  }

  /// Next whitespace-delimited token and its column; false at end of line.
  bool next(std::string* token, int* column) {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_])))
      ++pos_;
    if (pos_ >= line_.size()) return false;
    const std::size_t start = pos_;
    while (pos_ < line_.size() &&
           !std::isspace(static_cast<unsigned char>(line_[pos_])))
      ++pos_;
    *token = line_.substr(start, pos_ - start);
    *column = static_cast<int>(start) + 1;
    return true;
  }

  /// Column just past the line's content (for "missing argument" reports).
  int endColumn() const { return static_cast<int>(line_.size()) + 1; }

 private:
  std::string line_;
  std::size_t pos_ = 0;
};

struct Parser {
  std::istringstream in;
  int lineNo = 0;
  LineScanner scan;
  std::vector<Diagnostic> diagnostics;

  explicit Parser(const std::string& text) : in(text) {}

  bool fail(std::string_view code, const std::string& what, int column) {
    Diagnostic d;
    d.code = std::string(code);
    d.severity = Severity::kError;
    d.location = {lineNo, column};
    d.message = what;
    diagnostics.push_back(std::move(d));
    return false;
  }

  /// Whole-artifact diagnostic (semantic checks after the line loop).
  bool failAt(std::string_view code, const std::string& what,
              SourceLocation location) {
    Diagnostic d;
    d.code = std::string(code);
    d.severity = Severity::kError;
    d.location = location;
    d.message = what;
    diagnostics.push_back(std::move(d));
    return false;
  }
};

bool parseProcessList(const std::string& token, int tokenCol, int n,
                      ProcessSet* out, Parser& p) {
  if (token == "all") {
    *out = ProcessSet::full(n);
    return true;
  }
  if (token == "none") {
    *out = ProcessSet();
    return true;
  }
  ProcessSet set;
  std::istringstream ids(token);
  std::string part;
  while (std::getline(ids, part, ',')) {
    try {
      const int id = std::stoi(part);
      if (id < 0 || id >= n)
        return p.fail(kDiagProcessIdOutOfRange,
                      "process id out of range: " + part, tokenCol);
      set.insert(id);
    } catch (const std::exception&) {
      return p.fail(kDiagParseError, "bad process id '" + part + "'",
                    tokenCol);
    }
  }
  *out = set;
  return true;
}

}  // namespace

ScenarioParseResult parseScenario(const std::string& text) {
  ScenarioParseResult result;
  Scenario& sc = result.scenario;
  Parser p(text);
  bool haveN = false, haveT = false, haveValues = false;
  SourceLocation algorithmLoc, valuesLoc;

  std::string line;
  while (std::getline(p.in, line)) {
    ++p.lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    p.scan.reset(line);
    std::string directive;
    int directiveCol = 0;
    if (!p.scan.next(&directive, &directiveCol)) continue;  // blank line

    auto expectInt = [&](int* out) {
      std::string tok;
      int col = 0;
      if (!p.scan.next(&tok, &col))
        return p.fail(kDiagParseError, "missing integer argument",
                      p.scan.endColumn());
      try {
        *out = std::stoi(tok);
      } catch (const std::exception&) {
        return p.fail(kDiagParseError, "expected integer, got '" + tok + "'",
                      col);
      }
      return true;
    };

    if (directive == "model") {
      std::string m;
      int col = 0;
      if (!p.scan.next(&m, &col)) {
        p.fail(kDiagParseError, "missing model", p.scan.endColumn());
        break;
      }
      if (m == "rs" || m == "RS") {
        sc.model = RoundModel::kRs;
      } else if (m == "rws" || m == "RWS") {
        sc.model = RoundModel::kRws;
      } else {
        p.fail(kDiagUnknownModel, "unknown model '" + m + "' (want rs or rws)",
               col);
        break;
      }
    } else if (directive == "algorithm") {
      int col = 0;
      if (!p.scan.next(&sc.algorithm, &col)) {
        p.fail(kDiagParseError, "missing algorithm name", p.scan.endColumn());
        break;
      }
      algorithmLoc = {p.lineNo, col};
    } else if (directive == "n") {
      if (!expectInt(&sc.cfg.n)) break;
      if (sc.cfg.n < 1 || sc.cfg.n > kMaxProcs) {
        p.fail(kDiagScenarioConfigOutOfRange, "n out of range", directiveCol);
        break;
      }
      haveN = true;
    } else if (directive == "t") {
      if (!expectInt(&sc.cfg.t)) break;
      haveT = true;
    } else if (directive == "horizon") {
      if (!expectInt(&sc.horizon)) break;
    } else if (directive == "values") {
      sc.values.clear();
      valuesLoc = {p.lineNo, directiveCol};
      std::string tok;
      int col = 0;
      while (p.scan.next(&tok, &col)) {
        if (tok == "_") {
          sc.values.push_back(kUndecided);
          continue;
        }
        try {
          sc.values.push_back(static_cast<Value>(std::stoi(tok)));
        } catch (const std::exception&) {
          p.fail(kDiagParseError, "bad value '" + tok + "'", col);
          break;
        }
      }
      if (!p.diagnostics.empty()) break;
      haveValues = true;
    } else if (directive == "crash") {
      int proc = 0, round = 0;
      std::string kw, sendtoKw, list;
      int col = 0;
      if (!expectInt(&proc)) break;
      if (!p.scan.next(&kw, &col) || kw != "round") {
        p.fail(kDiagParseError, "expected 'round'",
               col > 0 ? col : p.scan.endColumn());
        break;
      }
      if (!expectInt(&round)) break;
      if (!p.scan.next(&sendtoKw, &col) || sendtoKw != "sendto") {
        p.fail(kDiagParseError, "expected 'sendto'",
               col > 0 ? col : p.scan.endColumn());
        break;
      }
      int listCol = 0;
      if (!p.scan.next(&list, &listCol)) {
        p.fail(kDiagParseError, "missing sendto list", p.scan.endColumn());
        break;
      }
      if (!haveN) {
        p.fail(kDiagMissingDirective, "'n' must precede 'crash'",
               directiveCol);
        break;
      }
      if (proc < 0 || proc >= sc.cfg.n) {
        p.fail(kDiagProcessIdOutOfRange, "crash process out of range",
               directiveCol);
        break;
      }
      CrashEvent c;
      c.p = proc;
      c.round = round;
      if (!parseProcessList(list, listCol, sc.cfg.n, &c.sendTo, p)) break;
      sc.script.crashes.push_back(c);
    } else if (directive == "pending") {
      int src = 0, dst = 0, round = 0;
      std::string arrow, kw, when;
      int col = 0;
      if (!expectInt(&src)) break;
      if (!p.scan.next(&arrow, &col) || arrow != "->") {
        p.fail(kDiagParseError, "expected '->'",
               col > 0 ? col : p.scan.endColumn());
        break;
      }
      if (!expectInt(&dst)) break;
      if (!p.scan.next(&kw, &col) || kw != "round") {
        p.fail(kDiagParseError, "expected 'round'",
               col > 0 ? col : p.scan.endColumn());
        break;
      }
      if (!expectInt(&round)) break;
      int whenCol = 0;
      if (!p.scan.next(&when, &whenCol)) {
        p.fail(kDiagParseError, "expected 'arrival <r>' or 'never'",
               p.scan.endColumn());
        break;
      }
      PendingChoice pc;
      pc.src = src;
      pc.dst = dst;
      pc.round = round;
      if (when == "never") {
        pc.arrival = kNoRound;
      } else if (when == "arrival") {
        int arrival = 0;
        if (!expectInt(&arrival)) break;
        pc.arrival = arrival;
      } else {
        p.fail(kDiagParseError,
               "expected 'arrival' or 'never', got '" + when + "'", whenCol);
        break;
      }
      sc.script.pendings.push_back(pc);
    } else {
      p.fail(kDiagUnknownDirective, "unknown directive '" + directive + "'",
             directiveCol);
      break;
    }
  }

  if (p.diagnostics.empty()) {
    if (!haveN || !haveT)
      p.failAt(kDiagMissingDirective, "scenario needs both 'n' and 't'", {});
  }
  if (p.diagnostics.empty() && haveValues &&
      static_cast<int>(sc.values.size()) != sc.cfg.n) {
    std::ostringstream os;
    os << "'values' must list exactly n values (got " << sc.values.size()
       << ", n=" << sc.cfg.n << ")";
    p.failAt(kDiagValueCountMismatch, os.str(), valuesLoc);
  }
  if (p.diagnostics.empty() && !haveValues) {
    sc.values.assign(static_cast<std::size_t>(sc.cfg.n), 0);
    for (int i = 0; i < sc.cfg.n; ++i)
      sc.values[static_cast<std::size_t>(i)] = i;  // default: distinct
  }
  result.structureOk = p.diagnostics.empty();
  if (p.diagnostics.empty() && findAlgorithm(sc.algorithm) == nullptr) {
    p.failAt(kDiagUnknownAlgorithm, "unknown algorithm '" + sc.algorithm + "'",
             algorithmLoc);
  }
  if (p.diagnostics.empty()) {
    const auto validity = validateScript(sc.script, sc.cfg, sc.model);
    if (!validity.ok) {
      p.failAt(kDiagScriptInvalid,
               "illegal script for " + ssvsp::toString(sc.model) + ": " +
                   validity.reason,
               {});
    }
  }

  result.ok = p.diagnostics.empty();
  result.diagnostics = p.diagnostics;
  if (!result.ok) {
    const Diagnostic& first = result.diagnostics.front();
    result.error = first.location.valid()
                       ? first.location.toString() + ": " + first.message
                       : first.message;
  }
  return result;
}

std::string serializeScenario(const Scenario& sc) {
  std::ostringstream os;
  os << "model " << (sc.model == RoundModel::kRs ? "rs" : "rws") << "\n";
  os << "algorithm " << sc.algorithm << "\n";
  os << "n " << sc.cfg.n << "\n";
  os << "t " << sc.cfg.t << "\n";
  os << "values";
  for (Value v : sc.values) {
    if (v == kUndecided)
      os << " _";
    else
      os << " " << v;
  }
  os << "\n";
  if (sc.horizon > 0) os << "horizon " << sc.horizon << "\n";
  for (const auto& c : sc.script.crashes) {
    os << "crash " << c.p << " round " << c.round << " sendto ";
    if (c.sendTo == ProcessSet::full(sc.cfg.n)) {
      os << "all";
    } else if (c.sendTo.empty()) {
      os << "none";
    } else {
      bool first = true;
      for (ProcessId q : c.sendTo) {
        os << (first ? "" : ",") << q;
        first = false;
      }
    }
    os << "\n";
  }
  for (const auto& pc : sc.script.pendings) {
    os << "pending " << pc.src << " -> " << pc.dst << " round " << pc.round
       << " ";
    if (pc.arrival == kNoRound)
      os << "never";
    else
      os << "arrival " << pc.arrival;
    os << "\n";
  }
  return os.str();
}

RoundRunResult runScenario(const Scenario& scenario, bool traceDeliveries) {
  RoundEngineOptions opt;
  opt.horizon = scenario.horizon > 0 ? scenario.horizon : scenario.cfg.t + 2;
  opt.traceDeliveries = traceDeliveries;
  return runRounds(scenario.cfg, scenario.model,
                   algorithmByName(scenario.algorithm).factory,
                   scenario.values, scenario.script, opt);
}

}  // namespace ssvsp
