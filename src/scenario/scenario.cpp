#include "scenario/scenario.hpp"

#include <sstream>

#include "consensus/registry.hpp"
#include "util/check.hpp"

namespace ssvsp {

namespace {

struct Parser {
  std::istringstream in;
  int lineNo = 0;
  std::string error;

  explicit Parser(const std::string& text) : in(text) {}

  bool fail(const std::string& what) {
    std::ostringstream os;
    os << "line " << lineNo << ": " << what;
    if (error.empty()) error = os.str();
    return false;
  }
};

bool parseProcessList(const std::string& token, int n, ProcessSet* out,
                      Parser& p) {
  if (token == "all") {
    *out = ProcessSet::full(n);
    return true;
  }
  if (token == "none") {
    *out = ProcessSet();
    return true;
  }
  ProcessSet set;
  std::istringstream ids(token);
  std::string part;
  while (std::getline(ids, part, ',')) {
    try {
      const int id = std::stoi(part);
      if (id < 0 || id >= n) return p.fail("process id out of range: " + part);
      set.insert(id);
    } catch (const std::exception&) {
      return p.fail("bad process id '" + part + "'");
    }
  }
  *out = set;
  return true;
}

}  // namespace

ScenarioParseResult parseScenario(const std::string& text) {
  ScenarioParseResult result;
  Scenario& sc = result.scenario;
  Parser p(text);
  bool haveN = false, haveT = false, haveValues = false;

  std::string line;
  while (std::getline(p.in, line)) {
    ++p.lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;  // blank line

    auto expectInt = [&](int* out) {
      std::string tok;
      if (!(ls >> tok)) return p.fail("missing integer argument");
      try {
        *out = std::stoi(tok);
      } catch (const std::exception&) {
        return p.fail("expected integer, got '" + tok + "'");
      }
      return true;
    };

    if (directive == "model") {
      std::string m;
      if (!(ls >> m)) {
        p.fail("missing model");
        break;
      }
      if (m == "rs" || m == "RS") {
        sc.model = RoundModel::kRs;
      } else if (m == "rws" || m == "RWS") {
        sc.model = RoundModel::kRws;
      } else {
        p.fail("unknown model '" + m + "' (want rs or rws)");
        break;
      }
    } else if (directive == "algorithm") {
      if (!(ls >> sc.algorithm)) {
        p.fail("missing algorithm name");
        break;
      }
    } else if (directive == "n") {
      if (!expectInt(&sc.cfg.n)) break;
      if (sc.cfg.n < 1 || sc.cfg.n > kMaxProcs) {
        p.fail("n out of range");
        break;
      }
      haveN = true;
    } else if (directive == "t") {
      if (!expectInt(&sc.cfg.t)) break;
      haveT = true;
    } else if (directive == "horizon") {
      if (!expectInt(&sc.horizon)) break;
    } else if (directive == "values") {
      sc.values.clear();
      std::string tok;
      while (ls >> tok) {
        if (tok == "_") {
          sc.values.push_back(kUndecided);
          continue;
        }
        try {
          sc.values.push_back(static_cast<Value>(std::stoi(tok)));
        } catch (const std::exception&) {
          p.fail("bad value '" + tok + "'");
          break;
        }
      }
      if (!p.error.empty()) break;
      haveValues = true;
    } else if (directive == "crash") {
      int proc = 0, round = 0;
      std::string kw, sendtoKw, list;
      if (!expectInt(&proc)) break;
      if (!(ls >> kw) || kw != "round") {
        p.fail("expected 'round'");
        break;
      }
      if (!expectInt(&round)) break;
      if (!(ls >> sendtoKw) || sendtoKw != "sendto") {
        p.fail("expected 'sendto'");
        break;
      }
      if (!(ls >> list)) {
        p.fail("missing sendto list");
        break;
      }
      if (!haveN) {
        p.fail("'n' must precede 'crash'");
        break;
      }
      if (proc < 0 || proc >= sc.cfg.n) {
        p.fail("crash process out of range");
        break;
      }
      CrashEvent c;
      c.p = proc;
      c.round = round;
      if (!parseProcessList(list, sc.cfg.n, &c.sendTo, p)) break;
      sc.script.crashes.push_back(c);
    } else if (directive == "pending") {
      int src = 0, dst = 0, round = 0;
      std::string arrow, kw, when;
      if (!expectInt(&src)) break;
      if (!(ls >> arrow) || arrow != "->") {
        p.fail("expected '->'");
        break;
      }
      if (!expectInt(&dst)) break;
      if (!(ls >> kw) || kw != "round") {
        p.fail("expected 'round'");
        break;
      }
      if (!expectInt(&round)) break;
      if (!(ls >> when)) {
        p.fail("expected 'arrival <r>' or 'never'");
        break;
      }
      PendingChoice pc;
      pc.src = src;
      pc.dst = dst;
      pc.round = round;
      if (when == "never") {
        pc.arrival = kNoRound;
      } else if (when == "arrival") {
        int arrival = 0;
        if (!expectInt(&arrival)) break;
        pc.arrival = arrival;
      } else {
        p.fail("expected 'arrival' or 'never', got '" + when + "'");
        break;
      }
      sc.script.pendings.push_back(pc);
    } else {
      p.fail("unknown directive '" + directive + "'");
      break;
    }
  }

  if (p.error.empty()) {
    if (!haveN || !haveT) p.fail("scenario needs both 'n' and 't'");
  }
  if (p.error.empty() && haveValues &&
      static_cast<int>(sc.values.size()) != sc.cfg.n) {
    p.lineNo = 0;
    p.fail("'values' must list exactly n values");
  }
  if (p.error.empty() && !haveValues) {
    sc.values.assign(static_cast<std::size_t>(sc.cfg.n), 0);
    for (int i = 0; i < sc.cfg.n; ++i)
      sc.values[static_cast<std::size_t>(i)] = i;  // default: distinct
  }
  if (p.error.empty()) {
    // Algorithm must exist.
    try {
      algorithmByName(sc.algorithm);
    } catch (const InvariantViolation&) {
      p.lineNo = 0;
      p.fail("unknown algorithm '" + sc.algorithm + "'");
    }
  }
  if (p.error.empty()) {
    const auto validity = validateScript(sc.script, sc.cfg, sc.model);
    if (!validity.ok) {
      p.lineNo = 0;
      p.fail("illegal script for " + ssvsp::toString(sc.model) + ": " +
             validity.reason);
    }
  }

  result.ok = p.error.empty();
  result.error = p.error;
  return result;
}

std::string serializeScenario(const Scenario& sc) {
  std::ostringstream os;
  os << "model " << (sc.model == RoundModel::kRs ? "rs" : "rws") << "\n";
  os << "algorithm " << sc.algorithm << "\n";
  os << "n " << sc.cfg.n << "\n";
  os << "t " << sc.cfg.t << "\n";
  os << "values";
  for (Value v : sc.values) {
    if (v == kUndecided)
      os << " _";
    else
      os << " " << v;
  }
  os << "\n";
  if (sc.horizon > 0) os << "horizon " << sc.horizon << "\n";
  for (const auto& c : sc.script.crashes) {
    os << "crash " << c.p << " round " << c.round << " sendto ";
    if (c.sendTo == ProcessSet::full(sc.cfg.n)) {
      os << "all";
    } else if (c.sendTo.empty()) {
      os << "none";
    } else {
      bool first = true;
      for (ProcessId q : c.sendTo) {
        os << (first ? "" : ",") << q;
        first = false;
      }
    }
    os << "\n";
  }
  for (const auto& pc : sc.script.pendings) {
    os << "pending " << pc.src << " -> " << pc.dst << " round " << pc.round
       << " ";
    if (pc.arrival == kNoRound)
      os << "never";
    else
      os << "arrival " << pc.arrival;
    os << "\n";
  }
  return os.str();
}

RoundRunResult runScenario(const Scenario& scenario, bool traceDeliveries) {
  RoundEngineOptions opt;
  opt.horizon = scenario.horizon > 0 ? scenario.horizon : scenario.cfg.t + 2;
  opt.traceDeliveries = traceDeliveries;
  return runRounds(scenario.cfg, scenario.model,
                   algorithmByName(scenario.algorithm).factory,
                   scenario.values, scenario.script, opt);
}

}  // namespace ssvsp
