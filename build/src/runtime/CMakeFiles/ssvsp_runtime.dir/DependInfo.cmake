
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/delivery.cpp" "src/runtime/CMakeFiles/ssvsp_runtime.dir/delivery.cpp.o" "gcc" "src/runtime/CMakeFiles/ssvsp_runtime.dir/delivery.cpp.o.d"
  "/root/repo/src/runtime/executor.cpp" "src/runtime/CMakeFiles/ssvsp_runtime.dir/executor.cpp.o" "gcc" "src/runtime/CMakeFiles/ssvsp_runtime.dir/executor.cpp.o.d"
  "/root/repo/src/runtime/failure_pattern.cpp" "src/runtime/CMakeFiles/ssvsp_runtime.dir/failure_pattern.cpp.o" "gcc" "src/runtime/CMakeFiles/ssvsp_runtime.dir/failure_pattern.cpp.o.d"
  "/root/repo/src/runtime/schedulers.cpp" "src/runtime/CMakeFiles/ssvsp_runtime.dir/schedulers.cpp.o" "gcc" "src/runtime/CMakeFiles/ssvsp_runtime.dir/schedulers.cpp.o.d"
  "/root/repo/src/runtime/trace.cpp" "src/runtime/CMakeFiles/ssvsp_runtime.dir/trace.cpp.o" "gcc" "src/runtime/CMakeFiles/ssvsp_runtime.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ssvsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
