# Empty dependencies file for ssvsp_runtime.
# This may be replaced when dependencies are built.
