file(REMOVE_RECURSE
  "libssvsp_runtime.a"
)
