file(REMOVE_RECURSE
  "CMakeFiles/ssvsp_runtime.dir/delivery.cpp.o"
  "CMakeFiles/ssvsp_runtime.dir/delivery.cpp.o.d"
  "CMakeFiles/ssvsp_runtime.dir/executor.cpp.o"
  "CMakeFiles/ssvsp_runtime.dir/executor.cpp.o.d"
  "CMakeFiles/ssvsp_runtime.dir/failure_pattern.cpp.o"
  "CMakeFiles/ssvsp_runtime.dir/failure_pattern.cpp.o.d"
  "CMakeFiles/ssvsp_runtime.dir/schedulers.cpp.o"
  "CMakeFiles/ssvsp_runtime.dir/schedulers.cpp.o.d"
  "CMakeFiles/ssvsp_runtime.dir/trace.cpp.o"
  "CMakeFiles/ssvsp_runtime.dir/trace.cpp.o.d"
  "libssvsp_runtime.a"
  "libssvsp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssvsp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
