file(REMOVE_RECURSE
  "libssvsp_fd.a"
)
