
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fd/axioms.cpp" "src/fd/CMakeFiles/ssvsp_fd.dir/axioms.cpp.o" "gcc" "src/fd/CMakeFiles/ssvsp_fd.dir/axioms.cpp.o.d"
  "/root/repo/src/fd/failure_detectors.cpp" "src/fd/CMakeFiles/ssvsp_fd.dir/failure_detectors.cpp.o" "gcc" "src/fd/CMakeFiles/ssvsp_fd.dir/failure_detectors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/ssvsp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssvsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
