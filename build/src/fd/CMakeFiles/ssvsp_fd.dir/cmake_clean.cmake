file(REMOVE_RECURSE
  "CMakeFiles/ssvsp_fd.dir/axioms.cpp.o"
  "CMakeFiles/ssvsp_fd.dir/axioms.cpp.o.d"
  "CMakeFiles/ssvsp_fd.dir/failure_detectors.cpp.o"
  "CMakeFiles/ssvsp_fd.dir/failure_detectors.cpp.o.d"
  "libssvsp_fd.a"
  "libssvsp_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssvsp_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
