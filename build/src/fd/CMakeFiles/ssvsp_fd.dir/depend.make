# Empty dependencies file for ssvsp_fd.
# This may be replaced when dependencies are built.
