# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("runtime")
subdirs("fd")
subdirs("sync")
subdirs("rounds")
subdirs("consensus")
subdirs("latency")
subdirs("mc")
subdirs("sdd")
subdirs("commit")
subdirs("broadcast")
subdirs("async_consensus")
subdirs("viz")
subdirs("scenario")
subdirs("rsm")
subdirs("emul")
subdirs("core")
