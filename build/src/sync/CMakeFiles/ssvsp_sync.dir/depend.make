# Empty dependencies file for ssvsp_sync.
# This may be replaced when dependencies are built.
