
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/heartbeat_fd.cpp" "src/sync/CMakeFiles/ssvsp_sync.dir/heartbeat_fd.cpp.o" "gcc" "src/sync/CMakeFiles/ssvsp_sync.dir/heartbeat_fd.cpp.o.d"
  "/root/repo/src/sync/ss_scheduler.cpp" "src/sync/CMakeFiles/ssvsp_sync.dir/ss_scheduler.cpp.o" "gcc" "src/sync/CMakeFiles/ssvsp_sync.dir/ss_scheduler.cpp.o.d"
  "/root/repo/src/sync/synchrony.cpp" "src/sync/CMakeFiles/ssvsp_sync.dir/synchrony.cpp.o" "gcc" "src/sync/CMakeFiles/ssvsp_sync.dir/synchrony.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/ssvsp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssvsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
