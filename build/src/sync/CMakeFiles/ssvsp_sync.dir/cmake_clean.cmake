file(REMOVE_RECURSE
  "CMakeFiles/ssvsp_sync.dir/heartbeat_fd.cpp.o"
  "CMakeFiles/ssvsp_sync.dir/heartbeat_fd.cpp.o.d"
  "CMakeFiles/ssvsp_sync.dir/ss_scheduler.cpp.o"
  "CMakeFiles/ssvsp_sync.dir/ss_scheduler.cpp.o.d"
  "CMakeFiles/ssvsp_sync.dir/synchrony.cpp.o"
  "CMakeFiles/ssvsp_sync.dir/synchrony.cpp.o.d"
  "libssvsp_sync.a"
  "libssvsp_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssvsp_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
