file(REMOVE_RECURSE
  "libssvsp_sync.a"
)
