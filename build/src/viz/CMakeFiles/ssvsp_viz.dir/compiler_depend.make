# Empty compiler generated dependencies file for ssvsp_viz.
# This may be replaced when dependencies are built.
