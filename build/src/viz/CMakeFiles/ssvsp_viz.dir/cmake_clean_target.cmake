file(REMOVE_RECURSE
  "libssvsp_viz.a"
)
