file(REMOVE_RECURSE
  "CMakeFiles/ssvsp_viz.dir/spacetime.cpp.o"
  "CMakeFiles/ssvsp_viz.dir/spacetime.cpp.o.d"
  "libssvsp_viz.a"
  "libssvsp_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssvsp_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
