file(REMOVE_RECURSE
  "CMakeFiles/ssvsp_emul.dir/rs_from_ss.cpp.o"
  "CMakeFiles/ssvsp_emul.dir/rs_from_ss.cpp.o.d"
  "CMakeFiles/ssvsp_emul.dir/rws_from_sp.cpp.o"
  "CMakeFiles/ssvsp_emul.dir/rws_from_sp.cpp.o.d"
  "libssvsp_emul.a"
  "libssvsp_emul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssvsp_emul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
