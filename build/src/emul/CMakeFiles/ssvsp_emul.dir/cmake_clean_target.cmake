file(REMOVE_RECURSE
  "libssvsp_emul.a"
)
