# Empty dependencies file for ssvsp_emul.
# This may be replaced when dependencies are built.
