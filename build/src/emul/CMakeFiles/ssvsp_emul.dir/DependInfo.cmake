
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emul/rs_from_ss.cpp" "src/emul/CMakeFiles/ssvsp_emul.dir/rs_from_ss.cpp.o" "gcc" "src/emul/CMakeFiles/ssvsp_emul.dir/rs_from_ss.cpp.o.d"
  "/root/repo/src/emul/rws_from_sp.cpp" "src/emul/CMakeFiles/ssvsp_emul.dir/rws_from_sp.cpp.o" "gcc" "src/emul/CMakeFiles/ssvsp_emul.dir/rws_from_sp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rounds/CMakeFiles/ssvsp_rounds.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ssvsp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssvsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
