# Empty compiler generated dependencies file for ssvsp_commit.
# This may be replaced when dependencies are built.
