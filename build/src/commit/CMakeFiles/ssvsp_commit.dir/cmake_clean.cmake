file(REMOVE_RECURSE
  "CMakeFiles/ssvsp_commit.dir/commit.cpp.o"
  "CMakeFiles/ssvsp_commit.dir/commit.cpp.o.d"
  "libssvsp_commit.a"
  "libssvsp_commit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssvsp_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
