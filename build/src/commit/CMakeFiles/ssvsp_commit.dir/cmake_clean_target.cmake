file(REMOVE_RECURSE
  "libssvsp_commit.a"
)
