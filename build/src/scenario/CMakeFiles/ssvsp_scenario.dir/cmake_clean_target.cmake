file(REMOVE_RECURSE
  "libssvsp_scenario.a"
)
