file(REMOVE_RECURSE
  "CMakeFiles/ssvsp_scenario.dir/scenario.cpp.o"
  "CMakeFiles/ssvsp_scenario.dir/scenario.cpp.o.d"
  "libssvsp_scenario.a"
  "libssvsp_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssvsp_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
