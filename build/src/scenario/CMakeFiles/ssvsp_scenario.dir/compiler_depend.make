# Empty compiler generated dependencies file for ssvsp_scenario.
# This may be replaced when dependencies are built.
