# Empty compiler generated dependencies file for ssvsp_rounds.
# This may be replaced when dependencies are built.
