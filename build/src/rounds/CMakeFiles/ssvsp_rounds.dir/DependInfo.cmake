
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rounds/adversary.cpp" "src/rounds/CMakeFiles/ssvsp_rounds.dir/adversary.cpp.o" "gcc" "src/rounds/CMakeFiles/ssvsp_rounds.dir/adversary.cpp.o.d"
  "/root/repo/src/rounds/engine.cpp" "src/rounds/CMakeFiles/ssvsp_rounds.dir/engine.cpp.o" "gcc" "src/rounds/CMakeFiles/ssvsp_rounds.dir/engine.cpp.o.d"
  "/root/repo/src/rounds/failure_script.cpp" "src/rounds/CMakeFiles/ssvsp_rounds.dir/failure_script.cpp.o" "gcc" "src/rounds/CMakeFiles/ssvsp_rounds.dir/failure_script.cpp.o.d"
  "/root/repo/src/rounds/spec.cpp" "src/rounds/CMakeFiles/ssvsp_rounds.dir/spec.cpp.o" "gcc" "src/rounds/CMakeFiles/ssvsp_rounds.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ssvsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
