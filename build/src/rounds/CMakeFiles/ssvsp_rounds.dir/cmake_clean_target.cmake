file(REMOVE_RECURSE
  "libssvsp_rounds.a"
)
