file(REMOVE_RECURSE
  "CMakeFiles/ssvsp_rounds.dir/adversary.cpp.o"
  "CMakeFiles/ssvsp_rounds.dir/adversary.cpp.o.d"
  "CMakeFiles/ssvsp_rounds.dir/engine.cpp.o"
  "CMakeFiles/ssvsp_rounds.dir/engine.cpp.o.d"
  "CMakeFiles/ssvsp_rounds.dir/failure_script.cpp.o"
  "CMakeFiles/ssvsp_rounds.dir/failure_script.cpp.o.d"
  "CMakeFiles/ssvsp_rounds.dir/spec.cpp.o"
  "CMakeFiles/ssvsp_rounds.dir/spec.cpp.o.d"
  "libssvsp_rounds.a"
  "libssvsp_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssvsp_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
