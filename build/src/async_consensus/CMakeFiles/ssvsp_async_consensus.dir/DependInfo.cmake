
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/async_consensus/rotating.cpp" "src/async_consensus/CMakeFiles/ssvsp_async_consensus.dir/rotating.cpp.o" "gcc" "src/async_consensus/CMakeFiles/ssvsp_async_consensus.dir/rotating.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/ssvsp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssvsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
