# Empty dependencies file for ssvsp_async_consensus.
# This may be replaced when dependencies are built.
