file(REMOVE_RECURSE
  "CMakeFiles/ssvsp_async_consensus.dir/rotating.cpp.o"
  "CMakeFiles/ssvsp_async_consensus.dir/rotating.cpp.o.d"
  "libssvsp_async_consensus.a"
  "libssvsp_async_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssvsp_async_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
