file(REMOVE_RECURSE
  "libssvsp_async_consensus.a"
)
