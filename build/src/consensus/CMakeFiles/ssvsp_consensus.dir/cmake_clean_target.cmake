file(REMOVE_RECURSE
  "libssvsp_consensus.a"
)
