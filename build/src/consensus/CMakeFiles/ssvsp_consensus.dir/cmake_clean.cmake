file(REMOVE_RECURSE
  "CMakeFiles/ssvsp_consensus.dir/a1.cpp.o"
  "CMakeFiles/ssvsp_consensus.dir/a1.cpp.o.d"
  "CMakeFiles/ssvsp_consensus.dir/early_floodset.cpp.o"
  "CMakeFiles/ssvsp_consensus.dir/early_floodset.cpp.o.d"
  "CMakeFiles/ssvsp_consensus.dir/early_floodset_ws.cpp.o"
  "CMakeFiles/ssvsp_consensus.dir/early_floodset_ws.cpp.o.d"
  "CMakeFiles/ssvsp_consensus.dir/floodset.cpp.o"
  "CMakeFiles/ssvsp_consensus.dir/floodset.cpp.o.d"
  "CMakeFiles/ssvsp_consensus.dir/nonuniform.cpp.o"
  "CMakeFiles/ssvsp_consensus.dir/nonuniform.cpp.o.d"
  "CMakeFiles/ssvsp_consensus.dir/opt_floodset.cpp.o"
  "CMakeFiles/ssvsp_consensus.dir/opt_floodset.cpp.o.d"
  "CMakeFiles/ssvsp_consensus.dir/registry.cpp.o"
  "CMakeFiles/ssvsp_consensus.dir/registry.cpp.o.d"
  "libssvsp_consensus.a"
  "libssvsp_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssvsp_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
