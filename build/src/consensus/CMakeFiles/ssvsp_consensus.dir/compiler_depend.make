# Empty compiler generated dependencies file for ssvsp_consensus.
# This may be replaced when dependencies are built.
