
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/a1.cpp" "src/consensus/CMakeFiles/ssvsp_consensus.dir/a1.cpp.o" "gcc" "src/consensus/CMakeFiles/ssvsp_consensus.dir/a1.cpp.o.d"
  "/root/repo/src/consensus/early_floodset.cpp" "src/consensus/CMakeFiles/ssvsp_consensus.dir/early_floodset.cpp.o" "gcc" "src/consensus/CMakeFiles/ssvsp_consensus.dir/early_floodset.cpp.o.d"
  "/root/repo/src/consensus/early_floodset_ws.cpp" "src/consensus/CMakeFiles/ssvsp_consensus.dir/early_floodset_ws.cpp.o" "gcc" "src/consensus/CMakeFiles/ssvsp_consensus.dir/early_floodset_ws.cpp.o.d"
  "/root/repo/src/consensus/floodset.cpp" "src/consensus/CMakeFiles/ssvsp_consensus.dir/floodset.cpp.o" "gcc" "src/consensus/CMakeFiles/ssvsp_consensus.dir/floodset.cpp.o.d"
  "/root/repo/src/consensus/nonuniform.cpp" "src/consensus/CMakeFiles/ssvsp_consensus.dir/nonuniform.cpp.o" "gcc" "src/consensus/CMakeFiles/ssvsp_consensus.dir/nonuniform.cpp.o.d"
  "/root/repo/src/consensus/opt_floodset.cpp" "src/consensus/CMakeFiles/ssvsp_consensus.dir/opt_floodset.cpp.o" "gcc" "src/consensus/CMakeFiles/ssvsp_consensus.dir/opt_floodset.cpp.o.d"
  "/root/repo/src/consensus/registry.cpp" "src/consensus/CMakeFiles/ssvsp_consensus.dir/registry.cpp.o" "gcc" "src/consensus/CMakeFiles/ssvsp_consensus.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rounds/CMakeFiles/ssvsp_rounds.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssvsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
