
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mc/checker.cpp" "src/mc/CMakeFiles/ssvsp_mc.dir/checker.cpp.o" "gcc" "src/mc/CMakeFiles/ssvsp_mc.dir/checker.cpp.o.d"
  "/root/repo/src/mc/enumerator.cpp" "src/mc/CMakeFiles/ssvsp_mc.dir/enumerator.cpp.o" "gcc" "src/mc/CMakeFiles/ssvsp_mc.dir/enumerator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rounds/CMakeFiles/ssvsp_rounds.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssvsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
