file(REMOVE_RECURSE
  "libssvsp_mc.a"
)
