# Empty dependencies file for ssvsp_mc.
# This may be replaced when dependencies are built.
