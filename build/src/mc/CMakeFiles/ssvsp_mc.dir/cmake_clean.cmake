file(REMOVE_RECURSE
  "CMakeFiles/ssvsp_mc.dir/checker.cpp.o"
  "CMakeFiles/ssvsp_mc.dir/checker.cpp.o.d"
  "CMakeFiles/ssvsp_mc.dir/enumerator.cpp.o"
  "CMakeFiles/ssvsp_mc.dir/enumerator.cpp.o.d"
  "libssvsp_mc.a"
  "libssvsp_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssvsp_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
