
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdd/impossibility.cpp" "src/sdd/CMakeFiles/ssvsp_sdd.dir/impossibility.cpp.o" "gcc" "src/sdd/CMakeFiles/ssvsp_sdd.dir/impossibility.cpp.o.d"
  "/root/repo/src/sdd/sdd.cpp" "src/sdd/CMakeFiles/ssvsp_sdd.dir/sdd.cpp.o" "gcc" "src/sdd/CMakeFiles/ssvsp_sdd.dir/sdd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/ssvsp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/ssvsp_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssvsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
