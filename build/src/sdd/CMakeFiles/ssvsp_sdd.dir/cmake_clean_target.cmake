file(REMOVE_RECURSE
  "libssvsp_sdd.a"
)
