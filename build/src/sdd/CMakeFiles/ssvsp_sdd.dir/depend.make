# Empty dependencies file for ssvsp_sdd.
# This may be replaced when dependencies are built.
