file(REMOVE_RECURSE
  "CMakeFiles/ssvsp_sdd.dir/impossibility.cpp.o"
  "CMakeFiles/ssvsp_sdd.dir/impossibility.cpp.o.d"
  "CMakeFiles/ssvsp_sdd.dir/sdd.cpp.o"
  "CMakeFiles/ssvsp_sdd.dir/sdd.cpp.o.d"
  "libssvsp_sdd.a"
  "libssvsp_sdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssvsp_sdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
