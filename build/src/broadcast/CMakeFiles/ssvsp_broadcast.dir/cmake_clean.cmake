file(REMOVE_RECURSE
  "CMakeFiles/ssvsp_broadcast.dir/atomic.cpp.o"
  "CMakeFiles/ssvsp_broadcast.dir/atomic.cpp.o.d"
  "CMakeFiles/ssvsp_broadcast.dir/spec.cpp.o"
  "CMakeFiles/ssvsp_broadcast.dir/spec.cpp.o.d"
  "CMakeFiles/ssvsp_broadcast.dir/urb.cpp.o"
  "CMakeFiles/ssvsp_broadcast.dir/urb.cpp.o.d"
  "libssvsp_broadcast.a"
  "libssvsp_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssvsp_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
