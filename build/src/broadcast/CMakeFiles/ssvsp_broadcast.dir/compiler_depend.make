# Empty compiler generated dependencies file for ssvsp_broadcast.
# This may be replaced when dependencies are built.
