
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/broadcast/atomic.cpp" "src/broadcast/CMakeFiles/ssvsp_broadcast.dir/atomic.cpp.o" "gcc" "src/broadcast/CMakeFiles/ssvsp_broadcast.dir/atomic.cpp.o.d"
  "/root/repo/src/broadcast/spec.cpp" "src/broadcast/CMakeFiles/ssvsp_broadcast.dir/spec.cpp.o" "gcc" "src/broadcast/CMakeFiles/ssvsp_broadcast.dir/spec.cpp.o.d"
  "/root/repo/src/broadcast/urb.cpp" "src/broadcast/CMakeFiles/ssvsp_broadcast.dir/urb.cpp.o" "gcc" "src/broadcast/CMakeFiles/ssvsp_broadcast.dir/urb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rounds/CMakeFiles/ssvsp_rounds.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssvsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
