file(REMOVE_RECURSE
  "libssvsp_broadcast.a"
)
