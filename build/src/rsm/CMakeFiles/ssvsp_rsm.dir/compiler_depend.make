# Empty compiler generated dependencies file for ssvsp_rsm.
# This may be replaced when dependencies are built.
