file(REMOVE_RECURSE
  "CMakeFiles/ssvsp_rsm.dir/rsm.cpp.o"
  "CMakeFiles/ssvsp_rsm.dir/rsm.cpp.o.d"
  "libssvsp_rsm.a"
  "libssvsp_rsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssvsp_rsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
