file(REMOVE_RECURSE
  "libssvsp_rsm.a"
)
