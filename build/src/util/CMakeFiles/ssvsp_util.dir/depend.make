# Empty dependencies file for ssvsp_util.
# This may be replaced when dependencies are built.
