file(REMOVE_RECURSE
  "libssvsp_util.a"
)
