file(REMOVE_RECURSE
  "CMakeFiles/ssvsp_util.dir/logging.cpp.o"
  "CMakeFiles/ssvsp_util.dir/logging.cpp.o.d"
  "CMakeFiles/ssvsp_util.dir/process_set.cpp.o"
  "CMakeFiles/ssvsp_util.dir/process_set.cpp.o.d"
  "CMakeFiles/ssvsp_util.dir/rng.cpp.o"
  "CMakeFiles/ssvsp_util.dir/rng.cpp.o.d"
  "CMakeFiles/ssvsp_util.dir/serde.cpp.o"
  "CMakeFiles/ssvsp_util.dir/serde.cpp.o.d"
  "CMakeFiles/ssvsp_util.dir/stats.cpp.o"
  "CMakeFiles/ssvsp_util.dir/stats.cpp.o.d"
  "CMakeFiles/ssvsp_util.dir/table.cpp.o"
  "CMakeFiles/ssvsp_util.dir/table.cpp.o.d"
  "libssvsp_util.a"
  "libssvsp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssvsp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
