file(REMOVE_RECURSE
  "libssvsp_latency.a"
)
