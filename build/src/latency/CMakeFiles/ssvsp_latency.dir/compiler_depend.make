# Empty compiler generated dependencies file for ssvsp_latency.
# This may be replaced when dependencies are built.
