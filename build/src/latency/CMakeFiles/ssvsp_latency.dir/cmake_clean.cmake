file(REMOVE_RECURSE
  "CMakeFiles/ssvsp_latency.dir/latency.cpp.o"
  "CMakeFiles/ssvsp_latency.dir/latency.cpp.o.d"
  "libssvsp_latency.a"
  "libssvsp_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssvsp_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
