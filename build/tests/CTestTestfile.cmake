# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_fd[1]_include.cmake")
include("/root/repo/build/tests/test_sync[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_rounds[1]_include.cmake")
include("/root/repo/build/tests/test_consensus[1]_include.cmake")
include("/root/repo/build/tests/test_nonuniform[1]_include.cmake")
include("/root/repo/build/tests/test_broadcast[1]_include.cmake")
include("/root/repo/build/tests/test_async_consensus[1]_include.cmake")
include("/root/repo/build/tests/test_viz[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_scenario[1]_include.cmake")
include("/root/repo/build/tests/test_edges[1]_include.cmake")
include("/root/repo/build/tests/test_rsm[1]_include.cmake")
include("/root/repo/build/tests/test_scenarios_golden[1]_include.cmake")
include("/root/repo/build/tests/test_mc[1]_include.cmake")
include("/root/repo/build/tests/test_latency[1]_include.cmake")
include("/root/repo/build/tests/test_sdd[1]_include.cmake")
include("/root/repo/build/tests/test_commit[1]_include.cmake")
include("/root/repo/build/tests/test_emul[1]_include.cmake")
