file(REMOVE_RECURSE
  "CMakeFiles/test_commit.dir/test_commit.cpp.o"
  "CMakeFiles/test_commit.dir/test_commit.cpp.o.d"
  "test_commit"
  "test_commit.pdb"
  "test_commit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
