# Empty dependencies file for test_commit.
# This may be replaced when dependencies are built.
