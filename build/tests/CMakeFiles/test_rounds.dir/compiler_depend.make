# Empty compiler generated dependencies file for test_rounds.
# This may be replaced when dependencies are built.
