file(REMOVE_RECURSE
  "CMakeFiles/test_nonuniform.dir/test_nonuniform.cpp.o"
  "CMakeFiles/test_nonuniform.dir/test_nonuniform.cpp.o.d"
  "test_nonuniform"
  "test_nonuniform.pdb"
  "test_nonuniform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nonuniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
