# Empty dependencies file for test_nonuniform.
# This may be replaced when dependencies are built.
