file(REMOVE_RECURSE
  "CMakeFiles/test_emul.dir/test_emul.cpp.o"
  "CMakeFiles/test_emul.dir/test_emul.cpp.o.d"
  "test_emul"
  "test_emul.pdb"
  "test_emul[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
