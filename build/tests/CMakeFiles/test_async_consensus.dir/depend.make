# Empty dependencies file for test_async_consensus.
# This may be replaced when dependencies are built.
