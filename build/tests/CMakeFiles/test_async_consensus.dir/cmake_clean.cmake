file(REMOVE_RECURSE
  "CMakeFiles/test_async_consensus.dir/test_async_consensus.cpp.o"
  "CMakeFiles/test_async_consensus.dir/test_async_consensus.cpp.o.d"
  "test_async_consensus"
  "test_async_consensus.pdb"
  "test_async_consensus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_async_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
