file(REMOVE_RECURSE
  "CMakeFiles/test_scenarios_golden.dir/test_scenarios_golden.cpp.o"
  "CMakeFiles/test_scenarios_golden.dir/test_scenarios_golden.cpp.o.d"
  "test_scenarios_golden"
  "test_scenarios_golden.pdb"
  "test_scenarios_golden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenarios_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
