# Empty compiler generated dependencies file for test_scenarios_golden.
# This may be replaced when dependencies are built.
