file(REMOVE_RECURSE
  "CMakeFiles/test_sdd.dir/test_sdd.cpp.o"
  "CMakeFiles/test_sdd.dir/test_sdd.cpp.o.d"
  "test_sdd"
  "test_sdd.pdb"
  "test_sdd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
