file(REMOVE_RECURSE
  "CMakeFiles/test_consensus.dir/test_consensus.cpp.o"
  "CMakeFiles/test_consensus.dir/test_consensus.cpp.o.d"
  "test_consensus"
  "test_consensus.pdb"
  "test_consensus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
