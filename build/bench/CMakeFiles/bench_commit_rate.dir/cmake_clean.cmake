file(REMOVE_RECURSE
  "CMakeFiles/bench_commit_rate.dir/bench_commit_rate.cpp.o"
  "CMakeFiles/bench_commit_rate.dir/bench_commit_rate.cpp.o.d"
  "bench_commit_rate"
  "bench_commit_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_commit_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
