# Empty compiler generated dependencies file for bench_commit_rate.
# This may be replaced when dependencies are built.
