file(REMOVE_RECURSE
  "CMakeFiles/bench_sdd.dir/bench_sdd.cpp.o"
  "CMakeFiles/bench_sdd.dir/bench_sdd.cpp.o.d"
  "bench_sdd"
  "bench_sdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
