# Empty dependencies file for bench_sdd.
# This may be replaced when dependencies are built.
