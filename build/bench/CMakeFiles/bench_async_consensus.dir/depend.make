# Empty dependencies file for bench_async_consensus.
# This may be replaced when dependencies are built.
