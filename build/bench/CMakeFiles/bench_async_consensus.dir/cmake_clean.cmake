file(REMOVE_RECURSE
  "CMakeFiles/bench_async_consensus.dir/bench_async_consensus.cpp.o"
  "CMakeFiles/bench_async_consensus.dir/bench_async_consensus.cpp.o.d"
  "bench_async_consensus"
  "bench_async_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_async_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
