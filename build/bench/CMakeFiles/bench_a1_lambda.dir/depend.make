# Empty dependencies file for bench_a1_lambda.
# This may be replaced when dependencies are built.
