file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_lambda.dir/bench_a1_lambda.cpp.o"
  "CMakeFiles/bench_a1_lambda.dir/bench_a1_lambda.cpp.o.d"
  "bench_a1_lambda"
  "bench_a1_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
