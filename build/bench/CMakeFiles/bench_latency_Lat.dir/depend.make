# Empty dependencies file for bench_latency_Lat.
# This may be replaced when dependencies are built.
