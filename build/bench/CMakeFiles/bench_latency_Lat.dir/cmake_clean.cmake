file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_Lat.dir/bench_latency_Lat.cpp.o"
  "CMakeFiles/bench_latency_Lat.dir/bench_latency_Lat.cpp.o.d"
  "bench_latency_Lat"
  "bench_latency_Lat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_Lat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
