file(REMOVE_RECURSE
  "CMakeFiles/bench_floodsetws.dir/bench_floodsetws.cpp.o"
  "CMakeFiles/bench_floodsetws.dir/bench_floodsetws.cpp.o.d"
  "bench_floodsetws"
  "bench_floodsetws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_floodsetws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
