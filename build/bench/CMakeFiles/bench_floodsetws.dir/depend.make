# Empty dependencies file for bench_floodsetws.
# This may be replaced when dependencies are built.
