# Empty dependencies file for bench_latency_lat.
# This may be replaced when dependencies are built.
