file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_lat.dir/bench_latency_lat.cpp.o"
  "CMakeFiles/bench_latency_lat.dir/bench_latency_lat.cpp.o.d"
  "bench_latency_lat"
  "bench_latency_lat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_lat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
