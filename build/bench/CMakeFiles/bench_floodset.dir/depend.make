# Empty dependencies file for bench_floodset.
# This may be replaced when dependencies are built.
