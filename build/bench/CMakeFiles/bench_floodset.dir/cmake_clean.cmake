file(REMOVE_RECURSE
  "CMakeFiles/bench_floodset.dir/bench_floodset.cpp.o"
  "CMakeFiles/bench_floodset.dir/bench_floodset.cpp.o.d"
  "bench_floodset"
  "bench_floodset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_floodset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
