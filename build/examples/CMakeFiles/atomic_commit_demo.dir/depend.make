# Empty dependencies file for atomic_commit_demo.
# This may be replaced when dependencies are built.
