file(REMOVE_RECURSE
  "CMakeFiles/atomic_commit_demo.dir/atomic_commit_demo.cpp.o"
  "CMakeFiles/atomic_commit_demo.dir/atomic_commit_demo.cpp.o.d"
  "atomic_commit_demo"
  "atomic_commit_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomic_commit_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
