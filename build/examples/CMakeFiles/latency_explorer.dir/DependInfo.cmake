
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/latency_explorer.cpp" "examples/CMakeFiles/latency_explorer.dir/latency_explorer.cpp.o" "gcc" "examples/CMakeFiles/latency_explorer.dir/latency_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sync/CMakeFiles/ssvsp_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/latency/CMakeFiles/ssvsp_latency.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/ssvsp_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/sdd/CMakeFiles/ssvsp_sdd.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/ssvsp_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/commit/CMakeFiles/ssvsp_commit.dir/DependInfo.cmake"
  "/root/repo/build/src/async_consensus/CMakeFiles/ssvsp_async_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/ssvsp_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/scenario/CMakeFiles/ssvsp_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/ssvsp_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/rsm/CMakeFiles/ssvsp_rsm.dir/DependInfo.cmake"
  "/root/repo/build/src/broadcast/CMakeFiles/ssvsp_broadcast.dir/DependInfo.cmake"
  "/root/repo/build/src/emul/CMakeFiles/ssvsp_emul.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ssvsp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/rounds/CMakeFiles/ssvsp_rounds.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssvsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
