file(REMOVE_RECURSE
  "CMakeFiles/sdd_demo.dir/sdd_demo.cpp.o"
  "CMakeFiles/sdd_demo.dir/sdd_demo.cpp.o.d"
  "sdd_demo"
  "sdd_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdd_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
