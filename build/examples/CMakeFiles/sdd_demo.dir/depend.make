# Empty dependencies file for sdd_demo.
# This may be replaced when dependencies are built.
